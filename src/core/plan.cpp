#include "core/plan.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lens::core {

// ---------------------------------------------------------------------------
// Two-tier compilation. This is the frozen legacy path: every arithmetic
// expression and its evaluation order is kept exactly as the pre-K-tier code
// wrote it, so priced two-tier plans stay bit-identical to the historical
// evaluate() results (tests/test_plan.cpp pins this against a frozen
// reference). The K-tier metadata (cuts, per-tier latencies, hop bytes,
// multi-hop surfaces) is filled in alongside without touching the legacy
// fields.
// ---------------------------------------------------------------------------

DeploymentPlan DeploymentEvaluator::compile_two_tier(const dnn::Architecture& arch) const {
  DeploymentPlan plan;
  plan.comm_ = topology_.hop(0);
  plan.tier_names_ = topology_.tier_names();
  plan.num_tiers_ = 2;
  const perf::LayerPerformanceModel& model = *topology_.tier(0).model;
  const std::size_t n = arch.num_layers();

  // Lines 5-8: per-layer prediction — the only predictor calls of the whole
  // compile/price pipeline.
  plan.layer_latency_ms_.reserve(n);
  plan.layer_energy_mj_.reserve(n);
  for (const dnn::LayerInfo& info : arch.layers()) {
    const perf::LayerMeasurement m = model.predict(info.spec, info.input);
    plan.layer_latency_ms_.push_back(m.latency_ms);
    plan.layer_energy_mj_.push_back(m.energy_mj());
  }

  // Cloud execution time of the suffix starting at layer `first` (0 when
  // the paper's infinite-cloud assumption is in force).
  std::vector<double> cloud_suffix_ms(n + 1, 0.0);
  if (config_.cloud_model != nullptr) {
    for (std::size_t i = n; i-- > 0;) {
      const dnn::LayerInfo& info = arch.layers()[i];
      cloud_suffix_ms[i] =
          cloud_suffix_ms[i + 1] +
          config_.cloud_model->predict(info.spec, info.input).latency_ms;
    }
  }

  const std::uint64_t input_bytes = arch.input_bytes(config_.sizes);

  // All-Cloud: ship the raw input, wait for the answer. Always feasible —
  // nothing is resident on the edge.
  {
    DeploymentOption o;
    o.kind = DeploymentKind::kAllCloud;
    o.tx_bytes = input_bytes;
    o.edge_latency_ms = 0.0;
    o.edge_energy_mj = 0.0;
    o.cloud_latency_ms = cloud_suffix_ms[0];
    o.cuts = {0};
    o.tier_latency_ms = {0.0, o.cloud_latency_ms};
    o.hop_tx_bytes = {o.tx_bytes};
    plan.options_.push_back(o);
  }

  // Lines 9-12: each viable split point with its accumulated edge cost.
  // Options whose edge-resident weights exceed the memory budget are
  // skipped.
  const std::uint64_t budget = config_.edge_memory_budget_bytes;
  double latency_prefix = 0.0;
  double energy_prefix = 0.0;
  std::uint64_t weight_prefix = 0;
  for (std::size_t i = 0; i < n; ++i) {
    latency_prefix += plan.layer_latency_ms_[i];
    energy_prefix += plan.layer_energy_mj_[i];
    weight_prefix += 4ULL * arch.layers()[i].params;
    const std::uint64_t out_bytes = arch.output_bytes(i, config_.sizes);
    const bool viable = out_bytes < input_bytes;
    const bool fits = budget == 0 || weight_prefix <= budget;
    const bool last = i + 1 == n;
    if (last && fits) {
      // All-Edge: full on-device execution, no transfer.
      DeploymentOption o;
      o.kind = DeploymentKind::kAllEdge;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.edge_weight_bytes = weight_prefix;
      o.cuts = {n};
      o.tier_latency_ms = {latency_prefix, 0.0};
      o.hop_tx_bytes = {0};
      plan.options_.push_back(o);
    } else if (!last && viable && fits) {
      DeploymentOption o;
      o.kind = DeploymentKind::kPartitioned;
      o.split_after = i;
      o.tx_bytes = out_bytes;
      o.edge_latency_ms = latency_prefix;
      o.edge_energy_mj = energy_prefix;
      o.cloud_latency_ms = cloud_suffix_ms[i + 1];
      o.edge_weight_bytes = weight_prefix;
      o.cuts = {i + 1};
      o.tier_latency_ms = {latency_prefix, o.cloud_latency_ms};
      o.hop_tx_bytes = {out_bytes};
      plan.options_.push_back(o);
    }
  }

  // Per-option closed-form curves; the comm algebra comes from CommModel.
  plan.latency_curves_.reserve(plan.options_.size());
  plan.energy_curves_.reserve(plan.options_.size());
  for (const DeploymentOption& o : plan.options_) {
    comm::CostCurve latency{o.edge_latency_ms + o.cloud_latency_ms, 0.0};
    comm::CostCurve energy{o.edge_energy_mj, 0.0};
    if (o.tx_bytes > 0) {
      const comm::CostCurve tx_latency = plan.comm_.comm_latency_curve(o.tx_bytes);
      latency.constant += tx_latency.constant;
      latency.per_inverse_tu = tx_latency.per_inverse_tu;
      const comm::CostCurve tx_energy = plan.comm_.tx_energy_curve(o.tx_bytes);
      energy.constant += tx_energy.constant;
      energy.per_inverse_tu = tx_energy.per_inverse_tu;
    }
    plan.latency_curves_.push_back(latency);
    plan.energy_curves_.push_back(energy);
  }

  // One-hop surfaces carry the very same coefficients as the 1-D curves.
  plan.latency_surfaces_.reserve(plan.options_.size());
  plan.energy_surfaces_.reserve(plan.options_.size());
  for (std::size_t i = 0; i < plan.options_.size(); ++i) {
    plan.latency_surfaces_.push_back(
        {plan.latency_curves_[i].constant, {plan.latency_curves_[i].per_inverse_tu}});
    plan.energy_surfaces_.push_back(
        {plan.energy_curves_[i].constant, {plan.energy_curves_[i].per_inverse_tu}});
  }
  return plan;
}

// ---------------------------------------------------------------------------
// K-tier compilation: enumerate the nondecreasing cut-vector lattice
// (0 <= c_1 <= ... <= c_{K-1} <= n) in ascending lexicographic order, drop
// options that break a tier's memory budget, then dominance-prune in
// coefficient space — option B goes when some option A has a latency
// constant, every per-hop latency slope, an energy constant, and an energy
// slope that are all <= B's (then A is at least as good at *every* positive
// throughput vector, so nothing Pareto-optimal is ever dropped). All-Edge /
// All-Cloud anchors are exempt so DeploymentEvaluation::all_cloud() keeps
// its contract.
// ---------------------------------------------------------------------------

namespace {

bool surface_dominates(const comm::MultiHopCurve& lat_a, const comm::MultiHopCurve& en_a,
                       const comm::MultiHopCurve& lat_b, const comm::MultiHopCurve& en_b) {
  if (lat_a.constant > lat_b.constant || en_a.constant > en_b.constant) return false;
  for (std::size_t h = 0; h < lat_a.per_inverse_tu.size(); ++h) {
    if (lat_a.per_inverse_tu[h] > lat_b.per_inverse_tu[h]) return false;
  }
  for (std::size_t h = 0; h < en_a.per_inverse_tu.size(); ++h) {
    if (en_a.per_inverse_tu[h] > en_b.per_inverse_tu[h]) return false;
  }
  return true;
}

}  // namespace

DeploymentPlan DeploymentEvaluator::compile_multitier(const dnn::Architecture& arch) const {
  const std::size_t num_tiers = topology_.num_tiers();
  const std::size_t num_hops = topology_.num_hops();
  DeploymentPlan plan;
  plan.comm_ = topology_.hop(0);
  plan.later_hops_.assign(topology_.hops().begin() + 1, topology_.hops().end());
  plan.tier_names_ = topology_.tier_names();
  plan.num_tiers_ = num_tiers;
  const std::size_t n = arch.num_layers();

  // Per-layer prediction on the edge tier (also the plan's layer arrays),
  // then per-tier latency prefix sums so any segment [a, b) costs
  // lat[k][b] - lat[k][a].
  plan.layer_latency_ms_.reserve(n);
  plan.layer_energy_mj_.reserve(n);
  for (const dnn::LayerInfo& info : arch.layers()) {
    const perf::LayerMeasurement m = topology_.tier(0).model->predict(info.spec, info.input);
    plan.layer_latency_ms_.push_back(m.latency_ms);
    plan.layer_energy_mj_.push_back(m.energy_mj());
  }
  std::vector<std::vector<double>> tier_latency_prefix(num_tiers);
  for (std::size_t k = 0; k < num_tiers; ++k) {
    const perf::LayerPerformanceModel* model = topology_.tier(k).model;
    if (model == nullptr) continue;  // free tier: zero compute
    std::vector<double>& prefix = tier_latency_prefix[k];
    prefix.assign(n + 1, 0.0);
    double running = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (k == 0) {
        running += plan.layer_latency_ms_[i];
      } else {
        const dnn::LayerInfo& info = arch.layers()[i];
        running += model->predict(info.spec, info.input).latency_ms;
      }
      prefix[i + 1] = running;
    }
  }
  std::vector<double> edge_energy_prefix(n + 1, 0.0);
  std::vector<std::uint64_t> weight_prefix(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    edge_energy_prefix[i + 1] = edge_energy_prefix[i] + plan.layer_energy_mj_[i];
    weight_prefix[i + 1] = weight_prefix[i] + 4ULL * arch.layers()[i].params;
  }
  // Activation bytes crossing boundary b (before layer b); boundary 0 is the
  // raw model input.
  std::vector<std::uint64_t> boundary_bytes(n + 1, 0);
  boundary_bytes[0] = arch.input_bytes(config_.sizes);
  for (std::size_t i = 0; i < n; ++i) {
    boundary_bytes[i + 1] = arch.output_bytes(i, config_.sizes);
  }

  // Ascending lexicographic odometer over nondecreasing cut vectors.
  std::vector<std::size_t> cuts(num_hops, 0);
  while (true) {
    bool feasible = true;
    for (std::size_t k = 0; k < num_tiers && feasible; ++k) {
      const std::uint64_t tier_budget = topology_.tier(k).memory_budget_bytes;
      if (tier_budget == 0) continue;
      const std::size_t begin = k == 0 ? 0 : cuts[k - 1];
      const std::size_t end = k == num_tiers - 1 ? n : cuts[k];
      if (weight_prefix[end] - weight_prefix[begin] > tier_budget) feasible = false;
    }
    if (feasible) {
      DeploymentOption o;
      o.cuts = cuts;
      o.tier_latency_ms.assign(num_tiers, 0.0);
      for (std::size_t k = 0; k < num_tiers; ++k) {
        if (tier_latency_prefix[k].empty()) continue;
        const std::size_t begin = k == 0 ? 0 : cuts[k - 1];
        const std::size_t end = k == num_tiers - 1 ? n : cuts[k];
        o.tier_latency_ms[k] = tier_latency_prefix[k][end] - tier_latency_prefix[k][begin];
      }
      o.hop_tx_bytes.assign(num_hops, 0);
      for (std::size_t h = 0; h < num_hops; ++h) {
        // Hop h carries the activation at boundary c_{h+1} whenever any
        // layer runs past tier h; an empty middle tier still relays.
        if (cuts[h] < n) o.hop_tx_bytes[h] = boundary_bytes[cuts[h]];
      }
      o.edge_latency_ms = o.tier_latency_ms[0];
      o.edge_energy_mj = edge_energy_prefix[cuts[0]];
      o.edge_weight_bytes = weight_prefix[cuts[0]];
      o.tx_bytes = o.hop_tx_bytes[0];
      double remote_ms = 0.0;
      for (std::size_t k = 1; k < num_tiers; ++k) remote_ms += o.tier_latency_ms[k];
      o.cloud_latency_ms = remote_ms;
      if (cuts.front() == n) {
        o.kind = DeploymentKind::kAllEdge;
      } else if (cuts.back() == 0) {
        o.kind = DeploymentKind::kAllCloud;
      } else {
        o.kind = DeploymentKind::kPartitioned;
      }

      comm::MultiHopCurve latency;
      latency.per_inverse_tu.assign(num_hops, 0.0);
      for (std::size_t k = 0; k < num_tiers; ++k) latency.constant += o.tier_latency_ms[k];
      for (std::size_t h = 0; h < num_hops; ++h) {
        if (o.hop_tx_bytes[h] == 0) continue;
        const comm::CostCurve hop_latency =
            topology_.hop(h).comm_latency_curve(o.hop_tx_bytes[h]);
        latency.constant += hop_latency.constant;
        latency.per_inverse_tu[h] = hop_latency.per_inverse_tu;
      }
      // Only the device radio (hop 0) draws from the battery; fog-to-cloud
      // transfers are not billed to the edge energy objective.
      comm::MultiHopCurve energy;
      energy.per_inverse_tu.assign(num_hops, 0.0);
      energy.constant = o.edge_energy_mj;
      if (o.hop_tx_bytes[0] > 0) {
        const comm::CostCurve tx_energy = plan.comm_.tx_energy_curve(o.hop_tx_bytes[0]);
        energy.constant += tx_energy.constant;
        energy.per_inverse_tu[0] = tx_energy.per_inverse_tu;
      }

      plan.options_.push_back(std::move(o));
      plan.latency_surfaces_.push_back(std::move(latency));
      plan.energy_surfaces_.push_back(std::move(energy));
    }

    // Advance the odometer.
    std::size_t i = num_hops;
    while (i > 0 && cuts[i - 1] == n) --i;
    if (i == 0) break;
    ++cuts[i - 1];
    for (std::size_t j = i; j < num_hops; ++j) cuts[j] = cuts[i - 1];
  }

  // Dominance prune (first occurrence wins exact ties; anchors exempt).
  const std::size_t m = plan.options_.size();
  std::vector<bool> pruned(m, false);
  for (std::size_t b = 0; b < m; ++b) {
    if (plan.options_[b].kind != DeploymentKind::kPartitioned) continue;
    for (std::size_t a = 0; a < m && !pruned[b]; ++a) {
      if (a == b || pruned[a]) continue;
      if (!surface_dominates(plan.latency_surfaces_[a], plan.energy_surfaces_[a],
                             plan.latency_surfaces_[b], plan.energy_surfaces_[b])) {
        continue;
      }
      if (a < b ||
          !surface_dominates(plan.latency_surfaces_[b], plan.energy_surfaces_[b],
                             plan.latency_surfaces_[a], plan.energy_surfaces_[a])) {
        pruned[b] = true;
      }
    }
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (pruned[i]) continue;
    if (kept != i) {
      plan.options_[kept] = std::move(plan.options_[i]);
      plan.latency_surfaces_[kept] = std::move(plan.latency_surfaces_[i]);
      plan.energy_surfaces_[kept] = std::move(plan.energy_surfaces_[i]);
    }
    ++kept;
  }
  plan.options_.resize(kept);
  plan.latency_surfaces_.resize(kept);
  plan.energy_surfaces_.resize(kept);
  return plan;
}

// The pricing arithmetic deliberately mirrors the legacy evaluate() path
// term-for-term (edge prefix + comm + cloud suffix, in that order) so priced
// plans are bit-identical to the pre-refactor results. The K-tier pricing
// below extends the same pipeline order (tier 0, hop 0, tier 1, hop 1, ...)
// hop by hop.

const comm::CommModel& DeploymentPlan::hop(std::size_t h) const {
  if (h == 0) return comm_;
  return later_hops_.at(h - 1);
}

void DeploymentPlan::require_two_tier(const char* what) const {
  if (!later_hops_.empty()) {
    throw std::logic_error(std::string("DeploymentPlan: ") + what +
                           " needs a per-hop throughput vector on a K-tier plan");
  }
}

double DeploymentPlan::option_latency_ms(std::size_t index, double tu_mbps) const {
  require_two_tier("option_latency_ms(tu)");
  const DeploymentOption& o = options_.at(index);
  if (o.tx_bytes == 0) return o.edge_latency_ms;
  return o.edge_latency_ms + comm_.comm_latency_ms(o.tx_bytes, tu_mbps) +
         o.cloud_latency_ms;
}

double DeploymentPlan::option_energy_mj(std::size_t index, double tu_mbps) const {
  require_two_tier("option_energy_mj(tu)");
  const DeploymentOption& o = options_.at(index);
  if (o.tx_bytes == 0) return o.edge_energy_mj;
  return o.edge_energy_mj + comm_.tx_energy_mj(o.tx_bytes, tu_mbps);
}

double DeploymentPlan::option_latency_ms(std::size_t index,
                                         const std::vector<double>& tu_mbps) const {
  if (tu_mbps.size() != num_hops()) {
    throw std::invalid_argument("DeploymentPlan: expected one throughput per hop");
  }
  if (later_hops_.empty()) return option_latency_ms(index, tu_mbps[0]);
  const DeploymentOption& o = options_.at(index);
  double latency = o.tier_latency_ms[0];
  for (std::size_t h = 0; h < num_hops(); ++h) {
    if (o.hop_tx_bytes[h] > 0) {
      latency += hop(h).comm_latency_ms(o.hop_tx_bytes[h], tu_mbps[h]);
    }
    latency += o.tier_latency_ms[h + 1];
  }
  return latency;
}

double DeploymentPlan::option_energy_mj(std::size_t index,
                                        const std::vector<double>& tu_mbps) const {
  if (tu_mbps.size() != num_hops()) {
    throw std::invalid_argument("DeploymentPlan: expected one throughput per hop");
  }
  if (later_hops_.empty()) return option_energy_mj(index, tu_mbps[0]);
  const DeploymentOption& o = options_.at(index);
  if (o.hop_tx_bytes[0] == 0) return o.edge_energy_mj;
  return o.edge_energy_mj + comm_.tx_energy_mj(o.hop_tx_bytes[0], tu_mbps[0]);
}

DeploymentEvaluation DeploymentPlan::price(double tu_mbps) const {
  DeploymentEvaluation result;
  price_into(tu_mbps, result);
  return result;
}

DeploymentEvaluation DeploymentPlan::price(const std::vector<double>& tu_mbps) const {
  DeploymentEvaluation result;
  price_into(tu_mbps, result);
  return result;
}

void DeploymentPlan::price_into(double tu_mbps, DeploymentEvaluation& out) const {
  require_two_tier("price(tu)");
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  out.options.assign(options_.begin(), options_.end());
  out.layer_latency_ms = layer_latency_ms_;
  out.layer_energy_mj = layer_energy_mj_;
  for (DeploymentOption& o : out.options) {
    if (o.tx_bytes == 0) {
      o.latency_ms = o.edge_latency_ms;
      o.energy_mj = o.edge_energy_mj;
    } else {
      o.latency_ms = o.edge_latency_ms + comm_.comm_latency_ms(o.tx_bytes, tu_mbps) +
                     o.cloud_latency_ms;
      o.energy_mj = o.edge_energy_mj + comm_.tx_energy_mj(o.tx_bytes, tu_mbps);
    }
  }

  // Lines 13-14: independent minima for each objective.
  out.best_latency_option = 0;
  out.best_energy_option = 0;
  for (std::size_t i = 1; i < out.options.size(); ++i) {
    if (out.options[i].latency_ms < out.options[out.best_latency_option].latency_ms) {
      out.best_latency_option = i;
    }
    if (out.options[i].energy_mj < out.options[out.best_energy_option].energy_mj) {
      out.best_energy_option = i;
    }
  }
}

void DeploymentPlan::price_into(const std::vector<double>& tu_mbps,
                                DeploymentEvaluation& out) const {
  if (tu_mbps.size() != num_hops()) {
    throw std::invalid_argument("DeploymentPlan: expected one throughput per hop");
  }
  if (later_hops_.empty()) {
    price_into(tu_mbps[0], out);  // exact scalar (legacy) path at K=2
    return;
  }
  for (double tu : tu_mbps) {
    if (tu <= 0.0) {
      throw std::invalid_argument("DeploymentPlan: throughput must be positive");
    }
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  out.options.assign(options_.begin(), options_.end());
  out.layer_latency_ms = layer_latency_ms_;
  out.layer_energy_mj = layer_energy_mj_;
  for (DeploymentOption& o : out.options) {
    double latency = o.tier_latency_ms[0];
    for (std::size_t h = 0; h < num_hops(); ++h) {
      if (o.hop_tx_bytes[h] > 0) {
        latency += hop(h).comm_latency_ms(o.hop_tx_bytes[h], tu_mbps[h]);
      }
      latency += o.tier_latency_ms[h + 1];
    }
    o.latency_ms = latency;
    o.energy_mj = o.hop_tx_bytes[0] == 0
                      ? o.edge_energy_mj
                      : o.edge_energy_mj + comm_.tx_energy_mj(o.hop_tx_bytes[0], tu_mbps[0]);
  }
  out.best_latency_option = 0;
  out.best_energy_option = 0;
  for (std::size_t i = 1; i < out.options.size(); ++i) {
    if (out.options[i].latency_ms < out.options[out.best_latency_option].latency_ms) {
      out.best_latency_option = i;
    }
    if (out.options[i].energy_mj < out.options[out.best_energy_option].energy_mj) {
      out.best_energy_option = i;
    }
  }
}

PricedObjectives DeploymentPlan::objectives_at(double tu_mbps) const {
  require_two_tier("objectives_at(tu)");
  if (tu_mbps <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  PricedObjectives best;
  best.best_latency_ms = option_latency_ms(0, tu_mbps);
  best.best_energy_mj = option_energy_mj(0, tu_mbps);
  for (std::size_t i = 1; i < options_.size(); ++i) {
    const double latency = option_latency_ms(i, tu_mbps);
    const double energy = option_energy_mj(i, tu_mbps);
    if (latency < best.best_latency_ms) {
      best.best_latency_ms = latency;
      best.best_latency_option = i;
    }
    if (energy < best.best_energy_mj) {
      best.best_energy_mj = energy;
      best.best_energy_option = i;
    }
  }
  return best;
}

PricedObjectives DeploymentPlan::objectives_at(const std::vector<double>& tu_mbps) const {
  if (tu_mbps.size() != num_hops()) {
    throw std::invalid_argument("DeploymentPlan: expected one throughput per hop");
  }
  if (later_hops_.empty()) return objectives_at(tu_mbps[0]);
  for (double tu : tu_mbps) {
    if (tu <= 0.0) {
      throw std::invalid_argument("DeploymentPlan: throughput must be positive");
    }
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  PricedObjectives best;
  best.best_latency_ms = option_latency_ms(std::size_t{0}, tu_mbps);
  best.best_energy_mj = option_energy_mj(std::size_t{0}, tu_mbps);
  for (std::size_t i = 1; i < options_.size(); ++i) {
    const double latency = option_latency_ms(i, tu_mbps);
    const double energy = option_energy_mj(i, tu_mbps);
    if (latency < best.best_latency_ms) {
      best.best_latency_ms = latency;
      best.best_latency_option = i;
    }
    if (energy < best.best_energy_mj) {
      best.best_energy_mj = energy;
      best.best_energy_option = i;
    }
  }
  return best;
}

std::vector<comm::CostCurve> DeploymentPlan::collapsed_latency_curves(
    std::size_t free_hop, const std::vector<double>& fixed_tu_mbps) const {
  std::vector<comm::CostCurve> curves;
  curves.reserve(latency_surfaces_.size());
  for (const comm::MultiHopCurve& surface : latency_surfaces_) {
    curves.push_back(surface.collapse(free_hop, fixed_tu_mbps));
  }
  return curves;
}

std::vector<comm::CostCurve> DeploymentPlan::collapsed_energy_curves(
    std::size_t free_hop, const std::vector<double>& fixed_tu_mbps) const {
  std::vector<comm::CostCurve> curves;
  curves.reserve(energy_surfaces_.size());
  for (const comm::MultiHopCurve& surface : energy_surfaces_) {
    curves.push_back(surface.collapse(free_hop, fixed_tu_mbps));
  }
  return curves;
}

void DeploymentPlan::collapse_latency_curves_into(
    std::size_t free_hop, const std::vector<double>& fixed_tu_mbps,
    std::vector<comm::CostCurve>& out) const {
  out.resize(latency_surfaces_.size());
  for (std::size_t i = 0; i < latency_surfaces_.size(); ++i) {
    out[i] = latency_surfaces_[i].collapse(free_hop, fixed_tu_mbps);
  }
}

void DeploymentPlan::collapse_energy_curves_into(
    std::size_t free_hop, const std::vector<double>& fixed_tu_mbps,
    std::vector<comm::CostCurve>& out) const {
  out.resize(energy_surfaces_.size());
  for (std::size_t i = 0; i < energy_surfaces_.size(); ++i) {
    out[i] = energy_surfaces_[i].collapse(free_hop, fixed_tu_mbps);
  }
}

std::vector<PricedObjectives> DeploymentPlan::price_batch(
    const std::vector<double>& tus_mbps) const {
  std::vector<PricedObjectives> out(tus_mbps.size());
  price_batch_into(tus_mbps, out);
  return out;
}

void DeploymentPlan::price_batch_into(std::span<const double> tus_mbps,
                                      std::span<PricedObjectives> out) const {
  require_two_tier("price_batch(tus)");
  // Option-outer / throughput-inner sweep with running minima. Per option
  // the curve terms (edge costs, bits, cloud suffix, radio-power
  // coefficients) are hoisted once and the inner loop over throughputs is a
  // pure map — independent iterations the compiler vectorizes. Every
  // arithmetic expression below replicates option_latency_ms /
  // option_energy_mj (via CommModel's inline formulas) term-for-term, and
  // the minima are updated with the same strict-< in ascending option
  // order, so the result is bit-identical to the per-throughput
  // objectives_at() loop — which tests keep as the scalar oracle.
  const std::size_t m = tus_mbps.size();
  if (m == 0) return;
  if (out.size() != m) {
    throw std::invalid_argument("price_batch_into: output span length differs");
  }
  if (tus_mbps.front() <= 0.0) {
    throw std::invalid_argument("DeploymentPlan: throughput must be positive");
  }
  if (options_.empty()) throw std::logic_error("DeploymentPlan: empty plan");
  for (double tu : tus_mbps) {
    if (tu <= 0.0) {
      throw std::invalid_argument("DeploymentPlan: throughput must be positive");
    }
  }

  const double rtt = comm_.round_trip_ms();
  const double alpha = comm_.power_model().alpha_mw_per_mbps;
  const double beta = comm_.power_model().beta_mw;
  std::fill(out.begin(), out.end(), PricedObjectives{});

  for (std::size_t opt = 0; opt < options_.size(); ++opt) {
    const DeploymentOption& o = options_[opt];
    if (o.tx_bytes == 0) {
      // Throughput-free option: one candidate value for the whole sweep.
      const double latency = o.edge_latency_ms;
      const double energy = o.edge_energy_mj;
      for (std::size_t t = 0; t < m; ++t) {
        if (opt == 0 || latency < out[t].best_latency_ms) {
          out[t].best_latency_ms = latency;
          out[t].best_latency_option = opt;
        }
        if (opt == 0 || energy < out[t].best_energy_mj) {
          out[t].best_energy_mj = energy;
          out[t].best_energy_option = opt;
        }
      }
      continue;
    }
    const double bits = static_cast<double>(o.tx_bytes) * 8.0;
    const double edge_latency = o.edge_latency_ms;
    const double cloud_latency = o.cloud_latency_ms;
    const double edge_energy = o.edge_energy_mj;
    for (std::size_t t = 0; t < m; ++t) {
      const double tu = tus_mbps[t];
      const double tx_ms = bits / (tu * 1e3);
      const double latency = edge_latency + (tx_ms + rtt) + cloud_latency;
      const double energy = edge_energy + (alpha * tu + beta) * (tx_ms / 1e3);
      if (opt == 0 || latency < out[t].best_latency_ms) {
        out[t].best_latency_ms = latency;
        out[t].best_latency_option = opt;
      }
      if (opt == 0 || energy < out[t].best_energy_mj) {
        out[t].best_energy_mj = energy;
        out[t].best_energy_option = opt;
      }
    }
  }
}

std::vector<PricedObjectives> DeploymentPlan::price_batch_per_hop(
    const std::vector<std::vector<double>>& tus_mbps) const {
  std::vector<PricedObjectives> out(tus_mbps.size());
  price_batch_per_hop_into(tus_mbps, out);
  return out;
}

void DeploymentPlan::price_batch_per_hop_into(
    std::span<const std::vector<double>> tus_mbps,
    std::span<PricedObjectives> out) const {
  if (out.size() != tus_mbps.size()) {
    throw std::invalid_argument("price_batch_per_hop_into: output span length differs");
  }
  for (std::size_t i = 0; i < tus_mbps.size(); ++i) out[i] = objectives_at(tus_mbps[i]);
}

}  // namespace lens::core
