#pragma once
// Durable run checkpoints for the NAS drivers: rotated MOBO snapshots in a
// directory, written through lens::io's framed/atomic layer, plus the
// SIGINT/SIGTERM graceful-flush flag the driver polls between evaluation
// chunks.
//
// Rotation scheme: each snapshot lands in `snapshot-<evaluations>.ckpt`
// (zero-padded so lexicographic order equals evaluation order); after a
// successful write, files beyond the newest `keep` are deleted. Resume
// walks the directory newest-first and takes the first snapshot that
// passes the frame checksum and structural validation — a snapshot
// truncated or corrupted by a crash mid-rotation falls back to the
// previous one instead of aborting the resume.

#include <cstddef>
#include <string>
#include <vector>

#include "opt/mobo.hpp"

namespace lens::core {

/// Periodic run-checkpoint settings (NasConfig::checkpoint).
struct CheckpointConfig {
  std::string directory;   ///< empty: checkpointing disabled
  std::size_t period = 10; ///< evaluations between snapshots (>= 1)
  std::size_t keep = 3;    ///< rotation depth (>= 1)
};

/// `snapshot-<evaluations, zero-padded to 8>.ckpt`.
std::string checkpoint_file_name(std::size_t evaluations);

/// Write `snapshot` into `directory` (created if needed) and prune the
/// rotation down to the newest `keep` snapshots. Throws std::runtime_error
/// on I/O failure; the previous snapshots are never touched before the new
/// one is durably in place.
void save_run_checkpoint(const std::string& directory, const opt::MoboSnapshot& snapshot,
                         std::size_t keep);

/// Snapshot files in `directory`, sorted oldest-first. Throws
/// std::runtime_error when the directory cannot be read.
std::vector<std::string> list_run_checkpoints(const std::string& directory);

/// Load the newest snapshot in `directory` that verifies and parses,
/// falling back through older rotations on corruption. `loaded_path`, when
/// non-null, receives the file that won. Throws std::runtime_error when the
/// directory holds no loadable snapshot (every candidate's failure is
/// listed in the message).
opt::MoboSnapshot load_newest_run_checkpoint(const std::string& directory,
                                             std::string* loaded_path = nullptr);

/// Install a SIGINT/SIGTERM handler that only raises the interrupt flag —
/// the search loop finishes its current evaluation chunk, flushes a final
/// checkpoint, and returns with NasResult::interrupted set.
void install_interrupt_flush_handler();

/// True once SIGINT/SIGTERM arrived (or request_interrupt() was called).
bool interrupt_requested();

/// Programmatic equivalents, used by tests.
void request_interrupt();
void clear_interrupt();

}  // namespace lens::core
