#include "core/trained_accuracy.hpp"

#include "nn/builder.hpp"

namespace lens::core {

TrainedAccuracyEvaluator::TrainedAccuracyEvaluator(const SearchSpace& space,
                                                   TrainedAccuracyConfig config)
    : train_space_config_(space.config()), config_(config) {
  train_space_config_.input = config_.train_input;
  nn::ShapeSetConfig dataset_config = config_.dataset;
  dataset_config.image_size = config_.train_input.height;
  nn::ShapeSet dataset(dataset_config);
  train_data_ = dataset.generate(config_.train_samples);
  test_data_ = dataset.generate(config_.test_samples);
}

double TrainedAccuracyEvaluator::test_error_percent(const Genotype& genotype,
                                                    const dnn::Architecture& /*arch*/) const {
  // Re-decode against the training input shape.
  const SearchSpace train_space(train_space_config_);
  const dnn::Architecture train_arch = train_space.decode(genotype);

  // Deterministic per-genotype weight initialization.
  std::uint64_t h = config_.init_seed;
  for (int v : genotype) h = h * 1099511628211ULL + static_cast<std::uint64_t>(v) + 1;
  std::mt19937_64 rng(h);

  nn::Sequential network = nn::build_network(train_arch, rng);
  nn::Trainer trainer(network, config_.trainer);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) trainer.train_epoch(train_data_);
  return trainer.evaluate(test_data_).error_percent();
}

}  // namespace lens::core
