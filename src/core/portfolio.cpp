#include "core/portfolio.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/plan.hpp"

namespace lens::core {

PortfolioResult plan_portfolio(const NasResult& result, const SearchSpace& space,
                               const DeploymentEvaluator& evaluator,
                               const std::vector<Region>& regions,
                               const PortfolioConfig& config) {
  if (regions.empty()) throw std::invalid_argument("plan_portfolio: no regions");
  if (config.objective == kErrorObjective) {
    throw std::invalid_argument("plan_portfolio: objective must be latency or energy");
  }

  PortfolioResult best;
  double best_aggregate = std::numeric_limits<double>::infinity();
  bool found = false;

  for (const opt::ParetoPoint& p : result.front.points()) {
    const EvaluatedCandidate& candidate = result.history.at(p.id);
    if (candidate.error_percent > config.max_error_percent) continue;
    const dnn::Architecture arch = space.decode(candidate.genotype);
    // Predictors run once per candidate; each region only re-prices the plan.
    const DeploymentPlan compiled = evaluator.compile(arch);

    std::vector<RegionPlan> plans;
    plans.reserve(regions.size());
    double aggregate = config.aggregate == Aggregate::kMean ? 0.0 : -1.0;
    DeploymentEvaluation eval;
    for (const Region& region : regions) {
      compiled.price_into(region.tu_mbps, eval);
      RegionPlan plan;
      plan.region = region;
      if (config.objective == kLatencyObjective) {
        plan.cost = eval.best_latency_ms();
        plan.deployment_label = eval.latency_choice().label(arch);
      } else {
        plan.cost = eval.best_energy_mj();
        plan.deployment_label = eval.energy_choice().label(arch);
      }
      if (config.aggregate == Aggregate::kMean) {
        aggregate += plan.cost / static_cast<double>(regions.size());
      } else {
        aggregate = std::max(aggregate, plan.cost);
      }
      plans.push_back(std::move(plan));
    }

    if (aggregate < best_aggregate) {
      best_aggregate = aggregate;
      best.history_index = p.id;
      best.architecture_name = candidate.name;
      best.aggregate_cost = aggregate;
      best.plans = std::move(plans);
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument(
        "plan_portfolio: no frontier member satisfies the accuracy bound");
  }
  return best;
}

}  // namespace lens::core
