#include "core/nas.hpp"

#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "par/parallel.hpp"

namespace lens::core {

std::size_t GenotypeHash::operator()(const Genotype& genotype) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int v : genotype) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(v));
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

NasDriver::NasDriver(const SearchSpace& space, const DeploymentEvaluator& evaluator,
                     const AccuracyModel& accuracy, NasConfig config)
    : space_(space), evaluator_(evaluator), accuracy_(accuracy), config_(config) {}

std::vector<std::vector<double>> NasDriver::evaluate_batch(
    const std::vector<std::vector<double>>& xs, NasResult& result) {
  std::vector<Genotype> genotypes;
  genotypes.reserve(xs.size());
  for (const std::vector<double>& x : xs) genotypes.push_back(space_.from_normalized(x));

  // Genotypes not yet memoized, de-duplicated, in first-appearance order.
  std::vector<Genotype> missing;
  {
    std::unordered_set<Genotype, GenotypeHash> scheduled;
    for (const Genotype& genotype : genotypes) {
      if (cache_.count(genotype) > 0 || scheduled.count(genotype) > 0) continue;
      scheduled.insert(genotype);
      missing.push_back(genotype);
    }
  }

  // Stage 1 — parallel over uncached genotypes, one COARSE task per
  // candidate: decode + the full predictor pipeline of compile(). Both are
  // pure functions of the genotype. Architecture lacks a default
  // constructor, hence the optional slot.
  struct Fresh {
    std::optional<dnn::Architecture> arch;
    DeploymentPlan plan;
  };
  std::vector<Fresh> fresh = par::parallel_map(missing.size(), [&](std::size_t i) {
    Fresh f;
    f.arch.emplace(space_.decode(missing[i]));
    f.plan = evaluator_.compile(*f.arch);
    return f;
  });

  // Stage 2 — serial: the accuracy model is not required to be thread-safe
  // (e.g. CachedAccuracyModel, TrainedAccuracyEvaluator), so it is queried
  // in first-appearance order and the cache inserts happen here too. After
  // this loop the cache is read-only for the rest of the call.
  for (std::size_t i = 0; i < missing.size(); ++i) {
    CacheEntry entry;
    entry.name = fresh[i].arch->name();
    entry.error_percent = accuracy_.test_error_percent(missing[i], *fresh[i].arch);
    entry.plan = std::move(fresh[i].plan);
    cache_.emplace(std::move(missing[i]), std::move(entry));
  }
  cache_hits_ += genotypes.size() - fresh.size();

  // Stage 3 — parallel over the WHOLE batch (cached entries included), one
  // coarse task per candidate: price the compiled plan at the configured
  // throughput and assemble the full candidate record. Lookups are
  // concurrent reads of the now-frozen cache; every task writes only its
  // own slots, so the batch is bit-identical at any thread count.
  std::vector<std::vector<double>> ys(genotypes.size());
  std::vector<EvaluatedCandidate> candidates(genotypes.size());
  par::parallel_for(genotypes.size(), [&](std::size_t i) {
    const CacheEntry& entry = cache_.at(genotypes[i]);
    EvaluatedCandidate& candidate = candidates[i];
    candidate.genotype = std::move(genotypes[i]);
    candidate.name = entry.name;
    candidate.deployment = config_.hop_tu_mbps.empty()
                               ? entry.plan.price(config_.tu_mbps)
                               : entry.plan.price(config_.hop_tu_mbps);
    candidate.error_percent = entry.error_percent;
    switch (config_.mode) {
      case ObjectiveMode::kBestDeployment:
        candidate.latency_ms = candidate.deployment.best_latency_ms();
        candidate.energy_mj = candidate.deployment.best_energy_mj();
        break;
      case ObjectiveMode::kAllEdgeOnly: {
        const DeploymentOption& edge = candidate.deployment.all_edge();
        candidate.latency_ms = edge.latency_ms;
        candidate.energy_mj = edge.energy_mj;
        break;
      }
    }
    ys[i] = candidate.objectives();
  });

  // Stage 4 — serial: append to history in input order.
  result.history.reserve(result.history.size() + candidates.size());
  for (EvaluatedCandidate& candidate : candidates) {
    result.history.push_back(std::move(candidate));
  }
  return ys;
}

void NasDriver::run_mobo(NasResult& result) {
  auto sampler = [this](std::mt19937_64& rng) {
    return space_.to_normalized(space_.random(rng));
  };
  auto batch_objectives = [this, &result](const std::vector<std::vector<double>>& xs) {
    return evaluate_batch(xs, result);
  };
  auto objectives = [&batch_objectives](const std::vector<double>& x) {
    return batch_objectives({x}).front();
  };
  opt::MoboEngine engine(config_.mobo, kNumObjectives, sampler, objectives);
  engine.set_batch_objectives(batch_objectives);

  if (!config_.resume_run.empty()) {
    if (!config_.warm_start.empty()) {
      throw std::invalid_argument(
          "NasDriver: resume_run (exact-state resume) and warm_start (cross-config "
          "seeding) are mutually exclusive");
    }
    const opt::MoboSnapshot snapshot = load_newest_run_checkpoint(config_.resume_run);
    engine.restore(snapshot);
    // Replay the restored design points through the evaluator: rebuilds the
    // rich candidate records and the memoized plan cache without touching
    // the engine. The replayed objectives must reproduce the snapshot
    // bit-for-bit — a divergence means the evaluator/space configuration
    // differs from the checkpointed run, which exact resume cannot honor.
    if (!snapshot.history.empty()) {
      std::vector<std::vector<double>> xs;
      xs.reserve(snapshot.history.size());
      for (const opt::Observation& o : snapshot.history) xs.push_back(o.x);
      const std::vector<std::vector<double>> ys = batch_objectives(xs);
      for (std::size_t i = 0; i < ys.size(); ++i) {
        if (ys[i] != snapshot.history[i].objectives) {
          throw std::runtime_error(
              "NasDriver: replayed objectives diverge from the checkpoint — the "
              "snapshot was taken under a different search configuration (use the "
              "genotype-CSV warm_start path to transfer observations instead)");
        }
      }
    }
  } else if (!config_.warm_start.empty()) {
    std::vector<std::vector<double>> seed_xs;
    seed_xs.reserve(config_.warm_start.size());
    for (const Genotype& genotype : config_.warm_start) {
      if (!space_.is_valid(genotype)) {
        throw std::invalid_argument("NasDriver: invalid warm-start genotype");
      }
      seed_xs.push_back(space_.to_normalized(genotype));
    }
    const std::vector<std::vector<double>> seed_ys = batch_objectives(seed_xs);
    std::vector<opt::Observation> seeds;
    seeds.reserve(seed_xs.size());
    for (std::size_t i = 0; i < seed_xs.size(); ++i) {
      seeds.push_back({seed_xs[i], seed_ys[i]});
    }
    engine.seed_observations(seeds);
  }

  const std::size_t total = config_.mobo.num_initial + config_.mobo.num_iterations;
  if (config_.checkpoint.directory.empty()) {
    if (engine.evaluations_done() < total) engine.step(total - engine.evaluations_done());
    return;
  }
  if (config_.checkpoint.period == 0 || config_.checkpoint.keep == 0) {
    throw std::invalid_argument("NasDriver: checkpoint period and keep must be >= 1");
  }
  // Checkpointed stepping: chunked step() calls are bit-identical to one
  // step(total) call (warm-up draws are serial either way), so snapshot
  // granularity never changes the trajectory. The first chunk stretches to
  // the end of warm-up so the warm-up batch still fans out in one piece.
  while (engine.evaluations_done() < total) {
    std::size_t chunk = config_.checkpoint.period;
    if (engine.evaluations_done() < config_.mobo.num_initial) {
      chunk = std::max(chunk, config_.mobo.num_initial - engine.evaluations_done());
    }
    chunk = std::min(chunk, total - engine.evaluations_done());
    engine.step(chunk);
    save_run_checkpoint(config_.checkpoint.directory, engine.snapshot(),
                        config_.checkpoint.keep);
    if (interrupt_requested() && engine.evaluations_done() < total) {
      // Graceful flush: the snapshot for the completed chunk is already
      // durable; stop here and surface the early exit to the caller.
      result.interrupted = true;
      return;
    }
  }
}

NasResult NasDriver::run() {
  NasResult result;
  const std::size_t hits_before = cache_hits_;

  auto sampler = [this](std::mt19937_64& rng) {
    return space_.to_normalized(space_.random(rng));
  };
  auto batch_objectives = [this, &result](const std::vector<std::vector<double>>& xs) {
    return evaluate_batch(xs, result);
  };
  auto objectives = [&batch_objectives](const std::vector<double>& x) {
    return batch_objectives({x}).front();
  };

  if (config_.strategy != SearchStrategy::kMobo &&
      (!config_.checkpoint.directory.empty() || !config_.resume_run.empty())) {
    throw std::invalid_argument(
        "NasDriver: run checkpoints / exact-state resume are only supported for the "
        "MOBO strategy");
  }

  switch (config_.strategy) {
    case SearchStrategy::kMobo: {
      run_mobo(result);
      break;
    }
    case SearchStrategy::kNsga2: {
      auto validator = [this](const std::vector<double>& x) {
        return space_.is_valid(space_.from_normalized(x));
      };
      opt::Nsga2Engine engine(config_.nsga2, kNumObjectives, sampler, objectives,
                              validator);
      engine.set_batch_objectives(batch_objectives);
      engine.run();
      break;
    }
    case SearchStrategy::kRandom: {
      // Same total budget as the MOBO configuration, pure random sampling.
      // Sampling only touches the RNG, so the whole budget is drawn up
      // front and evaluated as one (parallel) batch.
      std::mt19937_64 rng(config_.mobo.seed);
      const std::size_t budget = config_.mobo.num_initial + config_.mobo.num_iterations;
      std::vector<std::vector<double>> xs;
      xs.reserve(budget);
      for (std::size_t i = 0; i < budget; ++i) xs.push_back(sampler(rng));
      batch_objectives(xs);
      break;
    }
  }

  // Rebuild the front with ids pointing into our richer history records.
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    result.front.insert(i, result.history[i].objectives());
  }
  result.cache_hits = cache_hits_ - hits_before;
  result.unique_evaluations = result.history.size() - result.cache_hits;
  return result;
}

}  // namespace lens::core
