#include "core/nas.hpp"

#include <stdexcept>

namespace lens::core {

NasDriver::NasDriver(const SearchSpace& space, const DeploymentEvaluator& evaluator,
                     const AccuracyModel& accuracy, NasConfig config)
    : space_(space), evaluator_(evaluator), accuracy_(accuracy), config_(config) {}

NasResult NasDriver::run() {
  NasResult result;

  auto sampler = [this](std::mt19937_64& rng) {
    return space_.to_normalized(space_.random(rng));
  };

  auto objectives = [this, &result](const std::vector<double>& x) {
    const Genotype genotype = space_.from_normalized(x);
    const dnn::Architecture arch = space_.decode(genotype);

    EvaluatedCandidate candidate;
    candidate.genotype = genotype;
    candidate.name = arch.name();
    candidate.deployment = evaluator_.evaluate(arch, config_.tu_mbps);
    candidate.error_percent = accuracy_.test_error_percent(genotype, arch);
    switch (config_.mode) {
      case ObjectiveMode::kBestDeployment:
        candidate.latency_ms = candidate.deployment.best_latency_ms();
        candidate.energy_mj = candidate.deployment.best_energy_mj();
        break;
      case ObjectiveMode::kAllEdgeOnly: {
        const DeploymentOption& edge = candidate.deployment.all_edge();
        candidate.latency_ms = edge.latency_ms;
        candidate.energy_mj = edge.energy_mj;
        break;
      }
    }
    result.history.push_back(candidate);
    return candidate.objectives();
  };

  switch (config_.strategy) {
    case SearchStrategy::kMobo: {
      opt::MoboEngine engine(config_.mobo, kNumObjectives, sampler, objectives);
      if (!config_.warm_start.empty()) {
        std::vector<opt::Observation> seeds;
        seeds.reserve(config_.warm_start.size());
        for (const Genotype& genotype : config_.warm_start) {
          if (!space_.is_valid(genotype)) {
            throw std::invalid_argument("NasDriver: invalid warm-start genotype");
          }
          const std::vector<double> x = space_.to_normalized(genotype);
          seeds.push_back({x, objectives(x)});
        }
        engine.seed_observations(seeds);
      }
      engine.run();
      break;
    }
    case SearchStrategy::kNsga2: {
      auto validator = [this](const std::vector<double>& x) {
        return space_.is_valid(space_.from_normalized(x));
      };
      opt::Nsga2Engine engine(config_.nsga2, kNumObjectives, sampler, objectives,
                              validator);
      engine.run();
      break;
    }
    case SearchStrategy::kRandom: {
      // Same total budget as the MOBO configuration, pure random sampling.
      std::mt19937_64 rng(config_.mobo.seed);
      const std::size_t budget = config_.mobo.num_initial + config_.mobo.num_iterations;
      for (std::size_t i = 0; i < budget; ++i) objectives(sampler(rng));
      break;
    }
  }

  // Rebuild the front with ids pointing into our richer history records.
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    result.front.insert(i, result.history[i].objectives());
  }
  return result;
}

}  // namespace lens::core
