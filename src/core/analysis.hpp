#pragma once
// Frontier analysis for the paper's evaluation (Figs. 6-7):
// two-objective projections of search histories, post-hoc repartitioning of
// a baseline's Pareto set, domination fractions, and combined-front
// composition.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/nas.hpp"
#include "opt/pareto.hpp"

namespace lens::core {

/// How to read a candidate's performance objectives when projecting.
enum class DeploymentPolicy {
  kAsSearched,      ///< the objective values the search itself used
  kAllEdge,         ///< force All-Edge costs
  kBestDeployment,  ///< force best-deployment (Alg. 1 minima)
};

/// A candidate's value for one objective under a policy.
double objective_value(const EvaluatedCandidate& candidate, Objective objective,
                       DeploymentPolicy policy);

/// Build the 2-D Pareto front of an entire search history over the objective
/// pair (a, b) under `policy`. ParetoPoint::id indexes the history.
opt::ParetoFront front_2d(const std::vector<EvaluatedCandidate>& history, Objective a,
                          Objective b, DeploymentPolicy policy = DeploymentPolicy::kAsSearched);

/// Re-evaluate exactly the members of `front` under best-deployment costs
/// and return the Pareto front of the re-evaluated points ("partitioning the
/// Traditional's Pareto set after the optimization", paper §V-A).
opt::ParetoFront repartition_front(const opt::ParetoFront& front,
                                   const std::vector<EvaluatedCandidate>& history, Objective a,
                                   Objective b);

/// Pairwise comparison of two fronts over the same objective pair.
struct FrontComparison {
  double a_dominates_b = 0.0;  ///< fraction of b's members dominated by a
  double b_dominates_a = 0.0;  ///< fraction of a's members dominated by b
  opt::CombinedFrontStats combined;
};

FrontComparison compare_fronts(const opt::ParetoFront& a, const opt::ParetoFront& b);

/// Count history candidates satisfying a predicate (Fig. 7 criteria).
std::size_t count_satisfying(const std::vector<EvaluatedCandidate>& history,
                             const std::function<bool(const EvaluatedCandidate&)>& predicate);

/// Search-convergence curve: hypervolume of the 2-D (a, b) front after each
/// evaluation, against `reference`. Monotone non-decreasing by construction;
/// the standard way to compare search strategies' sample efficiency.
std::vector<double> convergence_curve(const std::vector<EvaluatedCandidate>& history,
                                      Objective a, Objective b,
                                      const std::vector<double>& reference);

/// Knee-point selection: the front member minimizing the normalized
/// distance to the ideal point (component-wise minimum over the front).
/// The standard way to pick "the" model from a Pareto set when no explicit
/// preference is given. Throws std::invalid_argument on an empty front.
const opt::ParetoPoint& knee_point(const opt::ParetoFront& front);

}  // namespace lens::core
