#include "par/runtime.hpp"

#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>

namespace lens::par {

namespace {

std::size_t g_override = 0;  // 0 = no override
std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;

std::size_t env_threads() {
  const char* env = std::getenv("LENS_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  try {
    const long value = std::stol(env);
    if (value >= 1) return static_cast<std::size_t>(value);
  } catch (const std::exception&) {
    // Malformed LENS_THREADS: fall through to hardware detection.
  }
  return 0;
}

}  // namespace

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t max_threads() {
  if (g_override > 0) return g_override;
  if (const std::size_t n = env_threads(); n > 0) return n;
  return hardware_threads();
}

void set_max_threads(std::size_t n) { g_override = n; }

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  const std::size_t want = max_threads();
  if (!g_pool || g_pool->size() != want) {
    g_pool.reset();  // join the old workers before spawning the new pool
    g_pool = std::make_unique<ThreadPool>(want);
  }
  return *g_pool;
}

}  // namespace lens::par
