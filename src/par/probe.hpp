#pragma once
// ScalingProbe: a work/span profiler for the deterministic parallel layer.
//
// The scaling benches must report an honest speedup even on machines with
// fewer cores than the thread count under test (CI runners routinely expose
// 1-2 hardware threads). Wall-clock alone cannot do that, so while a probe
// is active, parallel_for records the per-chunk CPU time of every parallel
// section it executes. From those timings the probe computes:
//
//   work_ms()        — total CPU time across all recorded chunks (the
//                      serial-equivalent cost of the probed sections);
//   makespan_ms(T)   — the runtime of the same chunk sequence list-scheduled
//                      greedily (each chunk, in index order, onto the least
//                      loaded of T workers), with a barrier between sections
//                      exactly as parallel_for imposes one;
//   modeled_speedup(T) = work_ms() / makespan_ms(T) — the Cilkview-style
//                      speedup the recorded chunk structure supports at T
//                      threads, independent of how many cores the recording
//                      machine actually had.
//
// Chunk CPU times are measured with the per-thread CPU clock, so a probe
// run on an oversubscribed or single-core machine still measures what each
// chunk costs, not how long it waited for a core.
//
// Scope rules: constructing a ScalingProbe activates it for the current
// process (probes nest; the newest wins); destruction restores the previous
// one. Sections executed inline on a pool worker (nested parallelism) are
// NOT recorded — their cost is already inside the enclosing chunk's time.
// Recording costs two clock reads per chunk and only happens while a probe
// is active; the idle-path overhead is one relaxed atomic load.

#include <cstddef>
#include <mutex>
#include <vector>

namespace lens::par {

class ScalingProbe {
 public:
  ScalingProbe();
  ~ScalingProbe();
  ScalingProbe(const ScalingProbe&) = delete;
  ScalingProbe& operator=(const ScalingProbe&) = delete;

  /// The innermost live probe, or nullptr. Lock-free.
  static ScalingProbe* active() noexcept;

  /// CPU time consumed by the calling thread, in ms (CLOCK_THREAD_CPUTIME_ID).
  static double thread_cpu_ms() noexcept;

  /// Record one barrier-delimited parallel section as its per-chunk CPU
  /// times, in chunk-index order. Thread-safe.
  void add_section(std::vector<double> chunk_ms);

  /// Number of recorded sections / total chunks across them.
  std::size_t sections() const;
  std::size_t chunks() const;

  /// Total CPU time across every recorded chunk (serial-equivalent cost).
  double work_ms() const;

  /// Modeled runtime of the recorded sections at `threads` workers: greedy
  /// in-order list scheduling within each section, barrier between sections.
  double makespan_ms(std::size_t threads) const;

  /// work_ms() / makespan_ms(threads); 1.0 when nothing was recorded.
  double modeled_speedup(std::size_t threads) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::vector<double>> sections_;
  ScalingProbe* previous_ = nullptr;
};

}  // namespace lens::par
