#pragma once
// Deterministic data-parallel primitives.
//
// Determinism contract: for a fixed input, parallel_for / parallel_map
// produce bit-identical results for ANY thread count (including 1), because
//  - the index space is statically partitioned into contiguous chunks,
//  - every index writes only its own output slot (no shared accumulators),
//  - reductions are the caller's job and must run serially in index order.
// Callables therefore must be pure per index: no mutation of shared state,
// no RNG draws from a shared generator (derive per-index generators as
// `seed ^ index` instead — see perf/predictor.cpp).
//
// Exception contract: if any index throws, the exception from the
// lowest-numbered failing chunk is rethrown on the caller's thread after
// all chunks finished (same exception a serial loop would surface first).
//
// Serial fallback: a 1-thread pool, a trivial index space, or a call from
// inside a pool worker (nested parallelism) runs the loop inline.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "par/runtime.hpp"
#include "par/thread_pool.hpp"

namespace lens::par {

/// Apply fn(i) for i in [0, n) using the given pool.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(pool.size(), n);
  if (chunks <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::vector<std::exception_ptr> errors(chunks);
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    pool.submit([&, c, begin, end] {
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      {
        // Notify under the lock: `all_done` lives on the caller's stack, and
        // the caller may destroy it the moment it observes remaining == 0.
        // Holding the mutex across the signal keeps the waiter from returning
        // (it must re-acquire the mutex) until the signal has completed.
        std::lock_guard<std::mutex> lock(mutex);
        --remaining;
        all_done.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return remaining == 0; });
  }
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// parallel_for on the shared global pool.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for(global_pool(), n, fn);
}

/// Ordered map: out[i] = fn(i). The result type must be default
/// constructible (slots are pre-allocated, then assigned in parallel).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// parallel_map on the shared global pool.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map(global_pool(), n, fn);
}

/// Ordered map over a container: out[i] = fn(items[i]).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front()))> {
  return parallel_map(global_pool(), items.size(),
                      [&](std::size_t i) { return fn(items[i]); });
}

}  // namespace lens::par
