#pragma once
// Deterministic data-parallel primitives.
//
// Determinism contract: for a fixed input, parallel_for / parallel_map
// produce bit-identical results for ANY thread count (including 1), because
//  - the index space is statically partitioned into contiguous chunks whose
//    boundaries depend only on (n, chunks) — never on the thread count or
//    on runtime timing,
//  - every index writes only its own output slot (no shared accumulators),
//  - reductions are the caller's job and must run serially in index order.
// Callables therefore must be pure per index: no mutation of shared state,
// no RNG draws from a shared generator. Per-index generators must be
// derived with par::substream_seed(seed, i) (see par/substream.hpp); plain
// `seed ^ index` produces correlated mt19937_64 streams and is banned.
//
// Chunking: the index space is split into MORE chunks than workers
// (kChunksPerThread per worker by default, or an explicit count via
// parallel_for_chunked). Workers drain the chunk queue FIFO, so one
// straggler chunk overlaps the remaining chunks instead of serializing the
// whole section. Which worker runs a chunk never affects the result — each
// chunk's output is a function of its indices alone — so oversubscription
// preserves the determinism contract verbatim. Chunk boundaries are
// computed division-first (k * (n / chunks) + min(k, n % chunks)), which
// cannot overflow for any n; the earlier `n * k / chunks` form wrapped for
// n near 2^64 / chunks.
//
// Exception contract: if any index throws, the exception from the
// lowest-numbered failing chunk is rethrown on the caller's thread after
// all chunks finished (same exception a serial loop would surface first).
//
// Serial fallback: a 1-thread pool, a trivial index space, or a call from
// inside a pool worker (nested parallelism) runs the loop inline.
//
// Profiling: while a ScalingProbe (par/probe.hpp) is active, every section
// records its per-chunk CPU times so benches can report modeled speedups on
// machines with fewer cores than the thread count under test.

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "par/probe.hpp"
#include "par/runtime.hpp"
#include "par/substream.hpp"
#include "par/thread_pool.hpp"

namespace lens::par {

/// Default oversubscription factor: chunks per pool worker. Large enough
/// that a straggler chunk overlaps most of the remaining work, small enough
/// that per-chunk dispatch stays negligible for coarse chunk bodies.
inline constexpr std::size_t kChunksPerThread = 4;

/// Half-open index range [first, second) of chunk `k` when [0, n) is split
/// into `chunks` contiguous pieces. Division-first, so no intermediate can
/// overflow: k * (n / chunks) < n and min(k, n % chunks) < chunks <= n.
/// The first (n % chunks) chunks are one index longer than the rest.
inline std::pair<std::size_t, std::size_t> chunk_range(std::size_t n,
                                                       std::size_t chunks,
                                                       std::size_t k) {
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  const std::size_t begin = k * base + std::min(k, extra);
  const std::size_t end = begin + base + (k < extra ? 1 : 0);
  return {begin, end};
}

/// Apply fn(i) for i in [0, n), statically partitioned into exactly
/// min(chunks, n) contiguous chunks executed on the given pool. The result
/// is bit-identical for any pool size; the chunk count shapes load
/// balancing only.
template <typename Fn>
void parallel_for_chunked(ThreadPool& pool, std::size_t n, std::size_t chunks, Fn&& fn) {
  if (n == 0) return;
  chunks = std::min(std::max<std::size_t>(chunks, 1), n);
  ScalingProbe* const probe = ScalingProbe::active();

  if (chunks <= 1 || pool.size() <= 1 || ThreadPool::on_worker_thread()) {
    // Nested sections run inside an enclosing chunk whose time the active
    // probe already captures; recording them again would double-count.
    if (probe != nullptr && !ThreadPool::on_worker_thread()) {
      const double t0 = ScalingProbe::thread_cpu_ms();
      for (std::size_t i = 0; i < n; ++i) fn(i);
      probe->add_section({ScalingProbe::thread_cpu_ms() - t0});
    } else {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    }
    return;
  }

  std::vector<std::exception_ptr> errors(chunks);
  std::vector<double> chunk_ms(probe != nullptr ? chunks : 0);
  std::mutex mutex;
  std::condition_variable all_done;
  std::size_t remaining = chunks;

  for (std::size_t c = 0; c < chunks; ++c) {
    const auto [begin, end] = chunk_range(n, chunks, c);
    pool.submit([&, c, begin, end] {
      const double t0 = probe != nullptr ? ScalingProbe::thread_cpu_ms() : 0.0;
      try {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      } catch (...) {
        errors[c] = std::current_exception();
      }
      if (probe != nullptr) chunk_ms[c] = ScalingProbe::thread_cpu_ms() - t0;
      {
        // Notify under the lock: `all_done` lives on the caller's stack, and
        // the caller may destroy it the moment it observes remaining == 0.
        // Holding the mutex across the signal keeps the waiter from returning
        // (it must re-acquire the mutex) until the signal has completed.
        std::lock_guard<std::mutex> lock(mutex);
        --remaining;
        all_done.notify_one();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mutex);
    all_done.wait(lock, [&] { return remaining == 0; });
  }
  if (probe != nullptr) probe->add_section(std::move(chunk_ms));
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// Apply fn(i) for i in [0, n) using the given pool, with the default
/// kChunksPerThread oversubscription.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  parallel_for_chunked(pool, n, pool.size() * kChunksPerThread, fn);
}

/// parallel_for on the shared global pool.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn) {
  parallel_for(global_pool(), n, fn);
}

/// Ordered map: out[i] = fn(i). The result type must be default
/// constructible (slots are pre-allocated, then assigned in parallel).
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// parallel_map on the shared global pool.
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn) -> std::vector<decltype(fn(std::size_t{0}))> {
  return parallel_map(global_pool(), n, fn);
}

/// Ordered map over a container: out[i] = fn(items[i]).
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front()))> {
  return parallel_map(global_pool(), items.size(),
                      [&](std::size_t i) { return fn(items[i]); });
}

}  // namespace lens::par
