#pragma once
// Fixed-size worker pool underpinning lens::par::parallel_for /
// parallel_map (see parallel.hpp for the determinism contract).
//
// Semantics:
//  - submit() enqueues a task; tasks run FIFO on the first free worker.
//  - The destructor stops accepting new work, DRAINS every already-queued
//    task, then joins — accepted work is never dropped on shutdown.
//  - on_worker_thread() lets nested parallel sections detect that they are
//    already inside the pool and fall back to inline execution instead of
//    deadlocking waiting for workers they themselves occupy.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lens::par {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Throws std::runtime_error once shutdown has begun.
  void submit(std::function<void()> task);

  /// True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lens::par
