#include "par/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::par {

namespace {
// Set for the lifetime of each worker thread; queried by parallel_for to
// run nested sections inline rather than deadlock on the occupied pool.
thread_local bool t_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(num_threads, 1);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even when stopping: accepted work always runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace lens::par
