#pragma once
// Process-wide threading configuration and the shared worker pool.
//
// Thread-count resolution order (first match wins):
//   1. set_max_threads(n) with n >= 1 — the CLI's --threads flag;
//   2. the LENS_THREADS environment variable (positive integer);
//   3. std::thread::hardware_concurrency() (at least 1).
//
// global_pool() lazily builds one ThreadPool of max_threads() workers and
// rebuilds it when the configured count changes. Reconfiguring between
// parallel sections is safe; reconfiguring while a parallel_for is in
// flight is not (nothing in this repo does that).

#include <cstddef>

#include "par/thread_pool.hpp"

namespace lens::par {

/// std::thread::hardware_concurrency(), never less than 1.
std::size_t hardware_threads();

/// Resolved thread budget per the order above.
std::size_t max_threads();

/// Override the thread budget (0 clears the override, restoring
/// LENS_THREADS / hardware detection).
void set_max_threads(std::size_t n);

/// The shared pool, sized to max_threads().
ThreadPool& global_pool();

}  // namespace lens::par
