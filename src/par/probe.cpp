#include "par/probe.hpp"

#include <algorithm>
#include <atomic>
#include <ctime>

namespace lens::par {

namespace {
std::atomic<ScalingProbe*> g_active{nullptr};
}  // namespace

ScalingProbe::ScalingProbe() {
  previous_ = g_active.exchange(this, std::memory_order_acq_rel);
}

ScalingProbe::~ScalingProbe() {
  g_active.store(previous_, std::memory_order_release);
}

ScalingProbe* ScalingProbe::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

double ScalingProbe::thread_cpu_ms() noexcept {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  // Portable fallback: process CPU clock (coarser, but monotone non-negative).
  return static_cast<double>(std::clock()) * 1e3 / CLOCKS_PER_SEC;
}

void ScalingProbe::add_section(std::vector<double> chunk_ms) {
  if (chunk_ms.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  sections_.push_back(std::move(chunk_ms));
}

std::size_t ScalingProbe::sections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sections_.size();
}

std::size_t ScalingProbe::chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& section : sections_) total += section.size();
  return total;
}

double ScalingProbe::work_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& section : sections_) {
    for (double ms : section) total += ms;
  }
  return total;
}

double ScalingProbe::makespan_ms(std::size_t threads) const {
  if (threads == 0) threads = 1;
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  std::vector<double> load;
  for (const auto& section : sections_) {
    // Greedy in-order list schedule: chunk c goes to the least-loaded
    // worker, mirroring the FIFO pool draining a section's task queue.
    load.assign(threads, 0.0);
    for (double ms : section) {
      *std::min_element(load.begin(), load.end()) += ms;
    }
    total += *std::max_element(load.begin(), load.end());
  }
  return total;
}

double ScalingProbe::modeled_speedup(std::size_t threads) const {
  const double span = makespan_ms(threads);
  if (span <= 0.0) return 1.0;
  return work_ms() / span;
}

}  // namespace lens::par
