#pragma once
// Deterministic RNG substream derivation for data-parallel sections.
//
// Deriving per-index generators as `seed ^ index` is NOT sound for
// std::mt19937_64: adjacent indices differ in a handful of low seed bits,
// the Mersenne-Twister seeding routine mixes single-bit seed differences
// slowly, and the resulting streams start visibly correlated. The same
// applies to `seed + index` and to xor-ing small ad-hoc salts.
//
// substream_seed() instead runs (seed, index) through the splitmix64
// finalizer — the mixer designed exactly for turning counter-like inputs
// into independent-looking 64-bit states. Any two (seed, index) pairs that
// differ in a single bit produce avalanche-mixed, uncorrelated outputs, so
//
//     std::mt19937_64 rng(substream_seed(seed, i));
//
// is the sanctioned way to give every parallel index (or every named
// sub-component: pass a salt constant as `index`) its own stream while
// keeping results bit-identical at any thread count.

#include <cstdint>

namespace lens::par {

/// splitmix64-mix of a (seed, index) pair into a decorrelated 64-bit seed.
/// Pure and constexpr: the same pair always yields the same substream.
constexpr std::uint64_t substream_seed(std::uint64_t seed, std::uint64_t index) noexcept {
  // Advance the seed by `index + 1` golden-ratio increments (the splitmix64
  // stream position), then apply the splitmix64 output finalizer.
  std::uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// The full splitmix64 generator as a standard URBG: 8 bytes of state per
/// stream, versus ~2.5 KB for std::mt19937_64. That 300x is what lets a
/// fleet of a million simulated devices each carry a private RNG stream in
/// SoA device state (lens::fleet) — a per-device mt19937_64 would cost
/// gigabytes. Statistical quality is the splitmix64 finalizer's (avalanche-
/// mixed, passes BigCrush as a 64-bit stream); period 2^64 per stream,
/// which dwarfs any fleet horizon. Seed each device's stream with
/// substream_seed(fleet_seed, device_id) so streams are pairwise
/// decorrelated and independent of sharding.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr SplitMix64() noexcept = default;
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  friend constexpr bool operator==(const SplitMix64& a, const SplitMix64& b) noexcept {
    return a.state_ == b.state_;
  }
  friend constexpr bool operator!=(const SplitMix64& a, const SplitMix64& b) noexcept {
    return a.state_ != b.state_;
  }

 private:
  std::uint64_t state_ = 0;
};

}  // namespace lens::par
