#pragma once
// lens::io — the durability layer: crash-safe atomic file replacement plus
// checksummed containers that make truncated or corrupted files *detected*
// at load time instead of half-parsed.
//
// Two container flavours share the same FNV-1a integrity core:
//  - "checked" text files: the payload is written verbatim (so CSVs stay
//    readable by external tooling) and a trailing comment-style footer
//    `# lens:fnv1a <hex16> <bytes>` seals it. A file truncated at any byte
//    offset loses or damages the footer and is rejected.
//  - "framed" records: a leading header `lens-io v1 <format> <bytes> <hex16>`
//    names and versions the payload; used for the run-checkpoint snapshots.
//
// All writers go through atomic_write: write-temp -> flush -> fsync ->
// rename (+ directory fsync), so a SIGKILL mid-write leaves either the old
// file or the new one, never a partial hybrid, and every stream failure
// (full disk, closed descriptor) surfaces as std::runtime_error instead of
// a silently truncated file.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace lens::io {

/// FNV-1a offset basis (64-bit); the same constant the MOBO duplicate index
/// and the genotype cache already use.
inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over raw bytes; `seed` lets callers chain chunks.
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed = kFnvOffsetBasis);

/// Bit-exact double round-trip via the IEEE-754 representation: 16 lowercase
/// hex digits. Signed zeros, denormals, infinities and NaN payloads all
/// survive; this is the encoding every checkpoint field uses so that a
/// restored search continues with the *identical* floats.
std::string encode_double(double value);
/// Throws std::invalid_argument on anything but exactly 16 hex digits.
double decode_double(std::string_view hex);

/// Durable atomic replacement of `path`: the writer streams into
/// `path + ".tmp"`, the stream state is verified after the writer returns
/// and again after flush/close, the temp file is fsync'ed, renamed over
/// `path`, and the containing directory is fsync'ed. On any failure the
/// temp file is removed, the previous `path` contents are left untouched,
/// and std::runtime_error is thrown.
void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& writer);

/// atomic_write plus the `# lens:fnv1a <hex16> <bytes>` integrity footer
/// appended after the writer's payload.
void atomic_write_checked(const std::string& path,
                          const std::function<void(std::ostream&)>& writer);

/// Read a file written by atomic_write_checked, verify the footer (present,
/// size matches, checksum matches) and return the payload with the footer
/// stripped. Throws std::runtime_error naming the failure — a file
/// truncated at any byte offset, or with trailing garbage after the footer,
/// is rejected here before any parsing happens.
std::string read_checked(const std::string& path);

/// Write a framed record: `lens-io v1 <format> <bytes> <hex16>\n` + payload,
/// atomically. `format` names and versions the payload schema (e.g.
/// "mobo-snapshot-v1") and may not contain whitespace.
void write_framed(const std::string& path, const std::string& format,
                  const std::string& payload);

/// Read a framed record and return the verified payload. Throws
/// std::runtime_error on a missing/garbled header, a format-name mismatch,
/// a short payload (truncation), trailing bytes, or a checksum mismatch.
std::string read_framed(const std::string& path, const std::string& format);

}  // namespace lens::io
