#include "io/io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace lens::io {

namespace {

constexpr const char* kFooterTag = "# lens:fnv1a ";
constexpr const char* kFrameTag = "lens-io v1 ";

std::string to_hex16(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

bool parse_hex16(std::string_view hex, std::uint64_t* out) {
  if (hex.size() != 16) return false;
  std::uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

/// Flush user-space + kernel buffers of `path` to stable storage. Best
/// effort on filesystems without fsync support; a hard fsync error throws.
void fsync_path(const std::string& path, bool directory) {
#if !defined(_WIN32)
  int flags = O_RDONLY;
#if defined(O_DIRECTORY)
  if (directory) flags |= O_DIRECTORY;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    if (directory) return;  // e.g. relative path with no parent component
    throw std::runtime_error("atomic_write: cannot reopen " + path + " for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  // EINVAL: fsync unsupported on this fs (tmpfs variants) — data already
  // reached the page cache, nothing more we can do.
  if (rc != 0 && errno != EINVAL && !directory) {
    throw std::runtime_error("atomic_write: fsync failed for " + path);
  }
#else
  (void)path;
  (void)directory;
#endif
}

std::string parent_directory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string read_all(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(std::string(who) + ": cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error(std::string(who) + ": read failed for " + path);
  return std::move(buffer).str();
}

}  // namespace

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (unsigned char c : bytes) {
    h ^= static_cast<std::uint64_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::string encode_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return to_hex16(bits);
}

double decode_double(std::string_view hex) {
  std::uint64_t bits = 0;
  if (!parse_hex16(hex, &bits)) {
    throw std::invalid_argument("decode_double: expected 16 hex digits, got '" +
                                std::string(hex) + "'");
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("atomic_write: cannot open " + tmp);
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    const bool ok = static_cast<bool>(out);
    out.close();
    if (!ok || out.fail()) {
      std::remove(tmp.c_str());
      throw std::runtime_error("atomic_write: write/close failed for " + path);
    }
  }
  try {
    fsync_path(tmp, /*directory=*/false);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("atomic_write: rename to " + path + " failed");
  }
  fsync_path(parent_directory(path), /*directory=*/true);
}

void atomic_write_checked(const std::string& path,
                          const std::function<void(std::ostream&)>& writer) {
  // Materialize the payload first: the footer needs its size and checksum,
  // and the atomic temp file should never hold a footer-less intermediate.
  std::ostringstream payload_stream;
  writer(payload_stream);
  if (!payload_stream) {
    throw std::runtime_error("atomic_write_checked: payload writer failed for " + path);
  }
  std::string payload = std::move(payload_stream).str();
  // The footer must start on its own line; checksum the payload as stored.
  if (!payload.empty() && payload.back() != '\n') payload += '\n';
  atomic_write(path, [&](std::ostream& out) {
    out << payload << kFooterTag << to_hex16(fnv1a(payload)) << ' ' << payload.size()
        << '\n';
  });
}

std::string read_checked(const std::string& path) {
  std::string contents = read_all(path, "read_checked");
  if (contents.empty() || contents.back() != '\n') {
    throw std::runtime_error("read_checked: " + path +
                             " is missing its integrity footer (truncated?)");
  }
  const std::size_t line_start = contents.find_last_of('\n', contents.size() - 2);
  const std::size_t footer_at = line_start == std::string::npos ? 0 : line_start + 1;
  const std::string_view footer(contents.data() + footer_at, contents.size() - footer_at);
  if (footer.rfind(kFooterTag, 0) != 0) {
    throw std::runtime_error("read_checked: " + path +
                             " is missing its integrity footer (truncated?)");
  }
  std::istringstream fields{std::string(footer.substr(std::strlen(kFooterTag)))};
  std::string hex;
  std::size_t size = 0;
  std::string extra;
  if (!(fields >> hex >> size) || (fields >> extra)) {
    throw std::runtime_error("read_checked: malformed integrity footer in " + path);
  }
  std::uint64_t expected = 0;
  if (!parse_hex16(hex, &expected)) {
    throw std::runtime_error("read_checked: malformed integrity footer in " + path);
  }
  if (size != footer_at) {
    throw std::runtime_error("read_checked: payload size mismatch in " + path +
                             " (truncated or trailing garbage)");
  }
  contents.resize(footer_at);
  if (fnv1a(contents) != expected) {
    throw std::runtime_error("read_checked: checksum mismatch in " + path +
                             " (corrupted file)");
  }
  return contents;
}

void write_framed(const std::string& path, const std::string& format,
                  const std::string& payload) {
  if (format.empty() || format.find_first_of(" \t\n") != std::string::npos) {
    throw std::invalid_argument("write_framed: format name must be non-empty and "
                                "whitespace-free: '" +
                                format + "'");
  }
  atomic_write(path, [&](std::ostream& out) {
    out << kFrameTag << format << ' ' << payload.size() << ' '
        << to_hex16(fnv1a(payload)) << '\n'
        << payload;
  });
}

std::string read_framed(const std::string& path, const std::string& format) {
  const std::string contents = read_all(path, "read_framed");
  const std::size_t eol = contents.find('\n');
  if (contents.rfind(kFrameTag, 0) != 0 || eol == std::string::npos) {
    throw std::runtime_error("read_framed: " + path + " has no lens-io header");
  }
  std::istringstream header(
      contents.substr(std::strlen(kFrameTag), eol - std::strlen(kFrameTag)));
  std::string name;
  std::size_t size = 0;
  std::string hex;
  if (!(header >> name >> size >> hex)) {
    throw std::runtime_error("read_framed: malformed header in " + path);
  }
  if (name != format) {
    throw std::runtime_error("read_framed: " + path + " holds format '" + name +
                             "', expected '" + format + "'");
  }
  std::uint64_t expected = 0;
  if (!parse_hex16(hex, &expected)) {
    throw std::runtime_error("read_framed: malformed header in " + path);
  }
  const std::size_t payload_at = eol + 1;
  if (contents.size() < payload_at + size) {
    throw std::runtime_error("read_framed: " + path + " is truncated");
  }
  if (contents.size() > payload_at + size) {
    throw std::runtime_error("read_framed: trailing garbage after payload in " + path);
  }
  const std::string payload = contents.substr(payload_at);
  if (fnv1a(payload) != expected) {
    throw std::runtime_error("read_framed: checksum mismatch in " + path +
                             " (corrupted file)");
  }
  return payload;
}

}  // namespace lens::io
