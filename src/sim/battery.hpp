#pragma once
// Battery accounting for edge deployments.
//
// The paper optimizes per-inference edge energy; what a device owner feels
// is *inferences per charge*. This helper folds a request record stream
// (from EdgeCloudSystem) plus the device's idle draw into a battery
// trajectory: time-to-empty, inferences served until empty, and the energy
// split between compute, radio, and idle.

#include <cstdint>
#include <vector>

#include "sim/system.hpp"

namespace lens::sim {

struct BatteryConfig {
  /// Usable capacity. Phone-class: ~40 kJ (3000 mAh @ 3.7 V); battery-pack
  /// powered TX2-class: several hundred kJ.
  double capacity_j = 40000.0;
  /// Baseline platform draw while powered on (SoC idle + rails), mW.
  double idle_power_mw = 1500.0;
};

struct BatteryReport {
  bool survived = false;          ///< battery outlasted the whole record stream
  double time_to_empty_s = 0.0;   ///< capped at the stream's makespan when survived
  std::size_t inferences_served = 0;
  double inference_energy_j = 0.0;  ///< compute + radio energy of served requests
  double idle_energy_j = 0.0;       ///< idle draw over the elapsed time
  double mean_power_w = 0.0;        ///< total energy / elapsed time
};

/// Replay `records` (ordered by completion time) against a battery.
/// Inference energy is charged at each request's completion; idle energy
/// accrues continuously. Throws std::invalid_argument on non-positive
/// capacity or unordered records.
BatteryReport battery_replay(const std::vector<RequestRecord>& records,
                             const BatteryConfig& config);

}  // namespace lens::sim
