#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

#include "cloud/scheduler.hpp"
#include "par/substream.hpp"

namespace lens::sim {

namespace {

void validate_config(const SimConfig& config, std::size_t num_options) {
  if (config.fixed_option >= num_options) {
    throw std::invalid_argument("EdgeCloudSystem: bad fixed option index");
  }
  if (config.duration_s <= 0.0 || config.arrival_rate_hz <= 0.0) {
    throw std::invalid_argument("EdgeCloudSystem: bad duration or arrival rate");
  }
  if (config.faults.any_enabled() &&
      (config.timeout_ms <= 0.0 || config.retry_backoff_ms < 0.0)) {
    throw std::invalid_argument(
        "EdgeCloudSystem: fault injection needs a positive timeout and a "
        "non-negative retry backoff");
  }
  if (config.retry_jitter < 0.0 || config.retry_jitter > 1.0) {
    throw std::invalid_argument("EdgeCloudSystem: retry_jitter must be in [0, 1]");
  }
  if (config.breaker_failures > 0 && config.breaker_open_ms <= 0.0) {
    throw std::invalid_argument(
        "EdgeCloudSystem: the circuit breaker needs a positive open window");
  }
}

/// Does the option's deepest segment run on the last tier? Hand-built legacy
/// options (no per-hop byte vector) describe a single radio hop.
bool reaches_cloud(const core::DeploymentOption& o) {
  if (o.hop_tx_bytes.empty()) return o.tx_bytes > 0;
  return o.hop_tx_bytes.back() > 0;
}

}  // namespace

EdgeCloudSystem::EdgeCloudSystem(std::vector<core::DeploymentOption> options,
                                 comm::CommModel comm, comm::ThroughputTrace trace,
                                 SimConfig config)
    : options_(std::move(options)),
      comm_(std::move(comm)),
      trace_(std::move(trace)),
      config_(config) {
  if (options_.empty()) throw std::invalid_argument("EdgeCloudSystem: no options");
  validate_config(config_, options_.size());
  curves_.reserve(options_.size());
  for (const core::DeploymentOption& o : options_) {
    curves_.push_back(runtime::cost_curve(o, comm_, config_.metric));
  }
  find_fallback_option();
}

EdgeCloudSystem::EdgeCloudSystem(const core::DeploymentPlan& plan,
                                 comm::ThroughputTrace trace, SimConfig config)
    : options_(plan.options()),
      comm_(plan.comm()),
      trace_(std::move(trace)),
      config_(config),
      num_hops_(plan.num_hops()) {
  if (options_.empty()) throw std::invalid_argument("EdgeCloudSystem: empty plan");
  validate_config(config_, options_.size());
  if (num_hops_ == 1) {
    curves_ = config_.metric == runtime::OptimizeFor::kLatency ? plan.latency_curves()
                                                               : plan.energy_curves();
  } else {
    if (config_.backhaul_tu_mbps.size() != num_hops_ - 1) {
      throw std::invalid_argument(
          "EdgeCloudSystem: a K-tier plan needs backhaul_tu_mbps with one "
          "entry per hop past the radio");
    }
    for (double tu : config_.backhaul_tu_mbps) {
      if (!(tu > 0.0) || !std::isfinite(tu)) {
        throw std::invalid_argument(
            "EdgeCloudSystem: backhaul throughputs must be positive");
      }
    }
    // Dispatch curves: the plan's surfaces collapsed onto the radio axis at
    // the nominal backhaul rates.
    std::vector<double> pinned;
    pinned.reserve(num_hops_);
    pinned.push_back(1.0);  // free axis; ignored by collapse
    pinned.insert(pinned.end(), config_.backhaul_tu_mbps.begin(),
                  config_.backhaul_tu_mbps.end());
    curves_ = config_.metric == runtime::OptimizeFor::kLatency
                  ? plan.collapsed_latency_curves(0, pinned)
                  : plan.collapsed_energy_curves(0, pinned);
    later_hops_.reserve(num_hops_ - 1);
    for (std::size_t h = 1; h < num_hops_; ++h) later_hops_.push_back(plan.hop(h));
    backhaul_tu_ = config_.backhaul_tu_mbps;
  }
  find_fallback_option();
}

void EdgeCloudSystem::find_fallback_option() {
  // Cheapest edge-only option under the configured metric. Its cost curve
  // is constant (per_inverse_tu == 0), so any throughput prices it.
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < options_.size(); ++i) {
    if (options_[i].tx_bytes != 0) continue;
    const double cost = curves_[i].value(1.0);
    if (cost < best_cost) {
      best_cost = cost;
      fallback_option_ = i;
    }
  }
  for (const core::DeploymentOption& o : options_) {
    if (!reaches_cloud(o)) {
      has_sub_cloud_option_ = true;
      break;
    }
  }
}

std::size_t EdgeCloudSystem::pick_option(double now_s, const TimeVaryingLink& link,
                                         const ResourceTimeline& edge,
                                         const FaultInjector& faults) const {
  if (config_.policy == DispatchPolicy::kFixed) return config_.fixed_option;
  // Forced all-edge while the cloud is unreachable: any option that must
  // transmit would only time out, so dispatch falls back proactively. On a
  // K-tier plan the dominance loop below walks the ladder instead — options
  // stopping short of the cloud (fog rungs) stay serviceable.
  const bool cloud_down = faults.cloud_unavailable(now_s);
  if (num_hops_ == 1 && cloud_down && fallback_option_.has_value() &&
      config_.policy == DispatchPolicy::kDynamic) {
    return *fallback_option_;
  }
  const double tu = link.throughput_at(now_s);
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < curves_.size(); ++i) {
    if (cloud_down && has_sub_cloud_option_ && reaches_cloud(options_[i])) {
      continue;  // cloud-reaching options are unserviceable
    }
    if (fallback_option_.has_value() && crosses_dead_backhaul(options_[i], now_s, faults)) {
      continue;  // a backhaul outage cuts every tier past the dead hop
    }
    double cost;
    if (config_.policy == DispatchPolicy::kDynamic) {
      cost = curves_[i].value(tu);
    } else {
      // Queue-aware: estimated completion time given the current backlogs
      // (transfer time approximated at the instantaneous rate).
      const core::DeploymentOption& o = options_[i];
      double t = now_s;
      if (o.edge_latency_ms > 0.0) {
        t = std::max(t, edge.busy_until()) + o.edge_latency_ms / 1e3;
      }
      if (o.tx_bytes > 0) {
        const double tx_s = static_cast<double>(o.tx_bytes) * 8.0 / (tu * 1e6);
        t = std::max(t, link.busy_until()) + tx_s + comm_.round_trip_ms() / 1e3 +
            o.cloud_latency_ms / 1e3;
        // K-tier: the remote compute is in cloud_latency_ms already; add the
        // backhaul transfer and handshake of every later hop the option uses.
        for (std::size_t h = 1; h < num_hops_; ++h) {
          if (h >= o.hop_tx_bytes.size() || o.hop_tx_bytes[h] == 0) break;
          t += static_cast<double>(o.hop_tx_bytes[h]) * 8.0 / (backhaul_tu_[h - 1] * 1e6) +
               later_hops_[h - 1].round_trip_ms() / 1e3;
        }
      }
      cost = t - now_s;
    }
    if (!found || cost < best_cost) {
      best_cost = cost;
      best = i;
      found = true;
    }
  }
  return best;
}

bool EdgeCloudSystem::crosses_dead_backhaul(const core::DeploymentOption& option,
                                            double now_s,
                                            const FaultInjector& faults) const {
  for (std::size_t h = 1; h < num_hops_; ++h) {
    if (h >= option.hop_tx_bytes.size() || option.hop_tx_bytes[h] == 0) break;
    if (faults.backhaul_unavailable(now_s, h)) return true;
  }
  return false;
}

double EdgeCloudSystem::remote_chain(const core::DeploymentOption& option, double sent_s,
                                     const FaultInjector& faults,
                                     double& cloud_arrival_s) const {
  // Hop-0 handshake lands the payload on tier 1; then alternate tier compute
  // and backhaul transfers. Fog/cloud tiers run with unbounded parallelism
  // (only the edge accelerator and the radio are contended resources), so
  // the chain is pure latency addition. Backhaul transfers run at the
  // configured nominal rate, stretched by the hop's deep-fade factor and
  // delayed by its RTT (plus any active spike) — both sampled at departure.
  double t = sent_s + (comm_.round_trip_ms() + faults.rtt_extra_ms(sent_s)) / 1e3;
  cloud_arrival_s = t;  // arrival at tier 1 (deepest, unless later hops ship)
  t += option.tier_latency_ms[1] / 1e3;
  for (std::size_t h = 1; h < num_hops_; ++h) {
    if (option.hop_tx_bytes[h] == 0) break;  // nothing ships past tier h
    const double depart = t;
    // Per-device deep fades and region-wide brownouts both stretch the hop.
    const double tu = backhaul_tu_[h - 1] * faults.link_factor(depart, h) *
                      faults.backhaul_factor(depart, h);
    t += static_cast<double>(option.hop_tx_bytes[h]) * 8.0 / (tu * 1e6) +
         (later_hops_[h - 1].round_trip_ms() + faults.rtt_extra_ms(depart, h)) / 1e3;
    cloud_arrival_s = t;  // arrival at tier h + 1
    t += option.tier_latency_ms[h + 1] / 1e3;
  }
  return t;
}

SimStats EdgeCloudSystem::run() {
  if (ran_) throw std::logic_error("EdgeCloudSystem::run: already executed");
  ran_ = true;

  // Poisson arrivals over [0, duration).
  std::mt19937_64 rng(config_.seed);
  std::exponential_distribution<double> gap(config_.arrival_rate_hz);
  std::vector<double> arrivals;
  for (double t = gap(rng); t < config_.duration_s; t += gap(rng)) arrivals.push_back(t);

  // Fault overlay, generated up front from its own seeded substreams: the
  // schedule never consumes the arrival RNG and nothing here runs off the
  // worker pool, so stats are bit-identical for any thread budget.
  FaultScheduleConfig fault_config = config_.faults;
  if (fault_config.horizon_s <= 0.0) fault_config.horizon_s = 2.0 * config_.duration_s;
  const FaultInjector faults(FaultSchedule::generate(fault_config));

  ResourceTimeline edge;
  TimeVaryingLink link(trace_, comm_.power_model(), &faults);
  const double timeout_s = config_.timeout_ms / 1e3;
  const double backoff_s = config_.retry_backoff_ms / 1e3;

  // Finite-cloud machine pool (std::nullopt keeps the paper's infinite
  // cloud: suffixes never queue and are never shed).
  std::optional<cloud::CloudScheduler> cloud_sched;
  if (config_.cloud.has_value()) cloud_sched.emplace(*config_.cloud);

  // Per-device substream for retry and breaker-probe jitter: rooted at
  // (seed, device_id) so fleet peers sharing one outage window draw
  // decorrelated delays. The stream is consumed only on retries with
  // retry_jitter > 0 and on breaker transitions, so legacy runs are
  // bit-identical.
  std::mt19937_64 jitter_rng(
      par::substream_seed(par::substream_seed(config_.seed, 0x9e77), config_.device_id));
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Circuit breaker: consecutive cloud failures trip it open; while open,
  // cloud-reaching requests fast-fail to the edge fallback (no transmit, no
  // timeout wait) until the half-open probe time.
  const bool breaker_enabled =
      config_.breaker_failures > 0 && fallback_option_.has_value();
  const double breaker_open_s = config_.breaker_open_ms / 1e3;
  std::size_t consecutive_failures = 0;
  bool breaker_open = false;
  double breaker_opened_at = 0.0;
  double breaker_probe_at = 0.0;
  double breaker_open_accum_s = 0.0;
  const auto probe_delay = [&]() {
    return breaker_open_s * (1.0 + config_.retry_jitter * unit(jitter_rng));
  };

  SimStats stats;
  records_.reserve(arrivals.size());
  for (double arrival : arrivals) {
    RequestRecord record;
    record.arrival_s = arrival;
    record.option = pick_option(arrival, link, edge, faults);
    const core::DeploymentOption& option = options_[record.option];

    // Edge prefix (skipped entirely for All-Cloud), stretched by any active
    // straggler episode at arrival.
    double edge_done = arrival;
    if (option.edge_latency_ms > 0.0) {
      const double slow = faults.edge_slowdown(arrival);
      edge_done = edge.schedule(arrival, option.edge_latency_ms / 1e3 * slow);
    }
    record.energy_mj = option.edge_energy_mj;

    double completion = edge_done;
    if (option.tx_bytes > 0) {
      // Cloud attempt loop: transmit, then either the response arrives
      // (cloud reachable when the payload lands) or the client times out
      // timeout_ms after send completion and retries with exponential
      // backoff. After max_retries failures the request re-executes on the
      // cheapest edge-only option, or is dropped when there is none.
      double ready = edge_done;
      const bool needs_cloud = num_hops_ == 1 || reaches_cloud(option);
      // Sentinel < 0: attempts ended in success; >= 0: the give-up time at
      // which the request falls back to the edge (or is dropped).
      double gave_up_at = -1.0;
      for (std::size_t attempt = 0;; ++attempt) {
        if (needs_cloud && breaker_open && ready < breaker_probe_at) {
          // Breaker open: skip the doomed attempt entirely — no transmit,
          // no timeout wait. This is what keeps a shared outage from
          // turning into a retry storm.
          gave_up_at = ready;
          break;
        }
        const TransferResult transfer = link.schedule(ready, option.tx_bytes);
        record.energy_mj += transfer.energy_mj;
        // K-tier: walk the remote chain to find when the payload reaches
        // the deepest tier — that is when the cloud-outage check applies.
        double cloud_arrival = transfer.end_s;
        double chain_completion = 0.0;
        if (num_hops_ > 1) {
          chain_completion = remote_chain(option, transfer.end_s, faults, cloud_arrival);
        }
        bool attempt_ok = !needs_cloud || !faults.cloud_unavailable(cloud_arrival);
        bool was_shed = false;
        double failed_at = transfer.end_s + timeout_s;
        if (attempt_ok && needs_cloud && cloud_sched.has_value()) {
          // Finite cloud: the suffix must win a bounded machine slot, and
          // queueing + machine-speed service replace the constant latency.
          const double job_ms = num_hops_ == 1 ? option.cloud_latency_ms
                                               : option.tier_latency_ms.back();
          const cloud::Admission adm = cloud_sched->admit(
              cloud_arrival, job_ms, faults.machine_failure_fraction(cloud_arrival),
              faults.brownout_factor(cloud_arrival));
          if (adm.admitted) {
            completion = num_hops_ == 1
                             ? adm.completion_s +
                                   (comm_.round_trip_ms() +
                                    faults.rtt_extra_ms(transfer.end_s)) /
                                       1e3
                             : adm.completion_s;
          } else {
            // A shed is an immediate reject: the response returns after one
            // round trip, with no timeout wait.
            attempt_ok = false;
            was_shed = true;
            ++stats.shed;
            failed_at = cloud_arrival + comm_.round_trip_ms() / 1e3;
          }
        } else if (attempt_ok) {
          if (num_hops_ == 1) {
            // Round trip covers the request/response handshake (plus any
            // active RTT spike); the cloud suffix runs with unbounded
            // parallelism.
            const double rtt_s =
                (comm_.round_trip_ms() + faults.rtt_extra_ms(transfer.end_s)) / 1e3;
            completion = transfer.end_s + rtt_s + option.cloud_latency_ms / 1e3;
          } else {
            completion = chain_completion;
          }
        }
        if (attempt_ok) {
          if (needs_cloud) {
            consecutive_failures = 0;
            if (breaker_open) {
              // Successful half-open probe: reclose.
              breaker_open = false;
              breaker_open_accum_s += std::max(0.0, cloud_arrival - breaker_opened_at);
            }
          }
          break;
        }
        if (!was_shed) {
          ++record.timeouts;
          ++stats.timeouts;
        }
        if (breaker_enabled && needs_cloud) {
          if (breaker_open) {
            // Failed half-open probe: stay open, push the next probe out.
            breaker_probe_at = failed_at + probe_delay();
          } else if (++consecutive_failures >= config_.breaker_failures) {
            breaker_open = true;
            breaker_opened_at = failed_at;
            breaker_probe_at = failed_at + probe_delay();
            ++stats.breaker_trips;
          }
        }
        if (attempt >= config_.max_retries) {
          gave_up_at = failed_at;
          break;
        }
        ++stats.retries;
        double delay_s = backoff_s * std::pow(2.0, static_cast<double>(attempt));
        if (config_.retry_jitter > 0.0) {
          delay_s *= 1.0 - config_.retry_jitter / 2.0 +
                     config_.retry_jitter * unit(jitter_rng);
        }
        ready = failed_at + delay_s;
      }
      if (gave_up_at >= 0.0) {
        if (fallback_option_.has_value()) {
          const core::DeploymentOption& fb = options_[*fallback_option_];
          const double slow = faults.edge_slowdown(gave_up_at);
          completion =
              edge.schedule_unordered(gave_up_at, fb.edge_latency_ms / 1e3 * slow);
          record.energy_mj += fb.edge_energy_mj;
          record.fell_back = true;
          ++stats.fallback_executions;
        } else {
          completion = gave_up_at;
          record.dropped = true;
          ++stats.dropped;
        }
      }
    }
    record.completion_s = completion;
    record.latency_ms = (completion - arrival) * 1e3;
    records_.push_back(record);
  }

  // Aggregate over served requests; dropped ones count only against
  // availability (their radio/edge energy stays in the totals — it was
  // spent).
  std::vector<double> latencies;
  latencies.reserve(records_.size());
  for (const RequestRecord& r : records_) {
    stats.total_energy_mj += r.energy_mj;
    if (r.dropped) continue;
    ++stats.completed;
    latencies.push_back(r.latency_ms);
    stats.mean_latency_ms += r.latency_ms;
    stats.makespan_s = std::max(stats.makespan_s, r.completion_s);
    if (config_.deadline_ms > 0.0 && r.latency_ms > config_.deadline_ms) {
      ++stats.deadline_violations;
    }
  }
  stats.link_outage_episodes = faults.schedule().count(FaultClass::kLinkOutage);
  stats.cloud_outage_episodes = faults.schedule().count(FaultClass::kCloudOutage);
  stats.rtt_spike_episodes = faults.schedule().count(FaultClass::kRttSpike);
  stats.edge_slowdown_episodes = faults.schedule().count(FaultClass::kEdgeSlowdown);
  stats.machine_failure_episodes = faults.schedule().count(FaultClass::kMachineFailure);
  stats.brownout_episodes = faults.schedule().count(FaultClass::kRegionalBrownout);
  if (breaker_open) {
    breaker_open_accum_s += std::max(0.0, stats.makespan_s - breaker_opened_at);
  }
  stats.breaker_open_time_s = breaker_open_accum_s;
  if (cloud_sched.has_value()) {
    stats.datacenter_energy_j = cloud_sched->energy_j(stats.makespan_s);
  }
  if (stats.completed + stats.dropped > 0) {
    stats.availability = static_cast<double>(stats.completed) /
                         static_cast<double>(stats.completed + stats.dropped);
  }
  if (stats.completed == 0) return stats;
  if (config_.deadline_ms > 0.0) {
    stats.violation_rate = static_cast<double>(stats.deadline_violations) /
                           static_cast<double>(stats.completed);
  }
  stats.mean_latency_ms /= static_cast<double>(stats.completed);
  stats.energy_per_inference_mj =
      stats.total_energy_mj / static_cast<double>(stats.completed);
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    const double position = p / 100.0 * static_cast<double>(latencies.size() - 1);
    const auto lower = static_cast<std::size_t>(std::floor(position));
    const auto upper = static_cast<std::size_t>(std::ceil(position));
    const double fraction = position - static_cast<double>(lower);
    return latencies[lower] + fraction * (latencies[upper] - latencies[lower]);
  };
  stats.p50_latency_ms = percentile(50.0);
  stats.p95_latency_ms = percentile(95.0);
  stats.p99_latency_ms = percentile(99.0);
  stats.max_latency_ms = latencies.back();
  if (stats.makespan_s > 0.0) {
    stats.edge_utilization = edge.total_busy() / stats.makespan_s;
    stats.link_utilization = link.total_busy() / stats.makespan_s;
    stats.throughput_hz = static_cast<double>(stats.completed) / stats.makespan_s;
    stats.degraded_time_s = faults.degraded_time(stats.makespan_s);
    stats.degraded_fraction = stats.degraded_time_s / stats.makespan_s;
    const std::size_t good = stats.completed - stats.deadline_violations;
    stats.goodput_hz = config_.deadline_ms > 0.0
                           ? static_cast<double>(good) / stats.makespan_s
                           : stats.throughput_hz;
  }
  return stats;
}

}  // namespace lens::sim
