#include "sim/system.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <stdexcept>

namespace lens::sim {

EdgeCloudSystem::EdgeCloudSystem(std::vector<core::DeploymentOption> options,
                                 comm::CommModel comm, comm::ThroughputTrace trace,
                                 SimConfig config)
    : options_(std::move(options)),
      comm_(std::move(comm)),
      trace_(std::move(trace)),
      config_(config) {
  if (options_.empty()) throw std::invalid_argument("EdgeCloudSystem: no options");
  if (config_.fixed_option >= options_.size()) {
    throw std::invalid_argument("EdgeCloudSystem: bad fixed option index");
  }
  if (config_.duration_s <= 0.0 || config_.arrival_rate_hz <= 0.0) {
    throw std::invalid_argument("EdgeCloudSystem: bad duration or arrival rate");
  }
  curves_.reserve(options_.size());
  for (const core::DeploymentOption& o : options_) {
    curves_.push_back(runtime::cost_curve(o, comm_, config_.metric));
  }
}

EdgeCloudSystem::EdgeCloudSystem(const core::DeploymentPlan& plan,
                                 comm::ThroughputTrace trace, SimConfig config)
    : options_(plan.options()),
      comm_(plan.comm()),
      trace_(std::move(trace)),
      config_(config),
      curves_(config.metric == runtime::OptimizeFor::kLatency ? plan.latency_curves()
                                                              : plan.energy_curves()) {
  if (options_.empty()) throw std::invalid_argument("EdgeCloudSystem: empty plan");
  if (config_.fixed_option >= options_.size()) {
    throw std::invalid_argument("EdgeCloudSystem: bad fixed option index");
  }
  if (config_.duration_s <= 0.0 || config_.arrival_rate_hz <= 0.0) {
    throw std::invalid_argument("EdgeCloudSystem: bad duration or arrival rate");
  }
}

std::size_t EdgeCloudSystem::pick_option(double now_s, const TimeVaryingLink& link,
                                         const ResourceTimeline& edge) const {
  if (config_.policy == DispatchPolicy::kFixed) return config_.fixed_option;
  const double tu = link.throughput_at(now_s);
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < curves_.size(); ++i) {
    double cost;
    if (config_.policy == DispatchPolicy::kDynamic) {
      cost = curves_[i].value(tu);
    } else {
      // Queue-aware: estimated completion time given the current backlogs
      // (transfer time approximated at the instantaneous rate).
      const core::DeploymentOption& o = options_[i];
      double t = now_s;
      if (o.edge_latency_ms > 0.0) {
        t = std::max(t, edge.busy_until()) + o.edge_latency_ms / 1e3;
      }
      if (o.tx_bytes > 0) {
        const double tx_s = static_cast<double>(o.tx_bytes) * 8.0 / (tu * 1e6);
        t = std::max(t, link.busy_until()) + tx_s + comm_.round_trip_ms() / 1e3 +
            o.cloud_latency_ms / 1e3;
      }
      cost = t - now_s;
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

SimStats EdgeCloudSystem::run() {
  if (ran_) throw std::logic_error("EdgeCloudSystem::run: already executed");
  ran_ = true;

  // Poisson arrivals over [0, duration).
  std::mt19937_64 rng(config_.seed);
  std::exponential_distribution<double> gap(config_.arrival_rate_hz);
  std::vector<double> arrivals;
  for (double t = gap(rng); t < config_.duration_s; t += gap(rng)) arrivals.push_back(t);

  ResourceTimeline edge;
  TimeVaryingLink link(trace_, comm_.power_model());
  const double rtt_s = comm_.round_trip_ms() / 1e3;

  records_.reserve(arrivals.size());
  for (double arrival : arrivals) {
    RequestRecord record;
    record.arrival_s = arrival;
    record.option = pick_option(arrival, link, edge);
    const core::DeploymentOption& option = options_[record.option];

    // Edge prefix (skipped entirely for All-Cloud).
    double edge_done = arrival;
    if (option.edge_latency_ms > 0.0) {
      edge_done = edge.schedule(arrival, option.edge_latency_ms / 1e3);
    }
    record.energy_mj = option.edge_energy_mj;

    double completion = edge_done;
    if (option.tx_bytes > 0) {
      const TransferResult transfer = link.schedule(edge_done, option.tx_bytes);
      record.energy_mj += transfer.energy_mj;
      // Round trip covers the request/response handshake; the cloud suffix
      // runs with unbounded parallelism.
      completion = transfer.end_s + rtt_s + option.cloud_latency_ms / 1e3;
    }
    record.completion_s = completion;
    record.latency_ms = (completion - arrival) * 1e3;
    records_.push_back(record);
  }

  // Aggregate.
  SimStats stats;
  stats.completed = records_.size();
  if (records_.empty()) return stats;
  std::vector<double> latencies;
  latencies.reserve(records_.size());
  for (const RequestRecord& r : records_) {
    latencies.push_back(r.latency_ms);
    stats.total_energy_mj += r.energy_mj;
    stats.mean_latency_ms += r.latency_ms;
    stats.makespan_s = std::max(stats.makespan_s, r.completion_s);
    if (config_.deadline_ms > 0.0 && r.latency_ms > config_.deadline_ms) {
      ++stats.deadline_violations;
    }
  }
  if (config_.deadline_ms > 0.0) {
    stats.violation_rate =
        static_cast<double>(stats.deadline_violations) / static_cast<double>(records_.size());
  }
  stats.mean_latency_ms /= static_cast<double>(records_.size());
  stats.energy_per_inference_mj = stats.total_energy_mj / static_cast<double>(records_.size());
  std::sort(latencies.begin(), latencies.end());
  auto percentile = [&](double p) {
    const double position = p / 100.0 * static_cast<double>(latencies.size() - 1);
    const auto lower = static_cast<std::size_t>(std::floor(position));
    const auto upper = static_cast<std::size_t>(std::ceil(position));
    const double fraction = position - static_cast<double>(lower);
    return latencies[lower] + fraction * (latencies[upper] - latencies[lower]);
  };
  stats.p50_latency_ms = percentile(50.0);
  stats.p95_latency_ms = percentile(95.0);
  stats.p99_latency_ms = percentile(99.0);
  stats.max_latency_ms = latencies.back();
  if (stats.makespan_s > 0.0) {
    stats.edge_utilization = edge.total_busy() / stats.makespan_s;
    stats.link_utilization = link.total_busy() / stats.makespan_s;
    stats.throughput_hz = static_cast<double>(stats.completed) / stats.makespan_s;
  }
  return stats;
}

}  // namespace lens::sim
