#include "sim/battery.hpp"

#include <stdexcept>

namespace lens::sim {

BatteryReport battery_replay(const std::vector<RequestRecord>& records,
                             const BatteryConfig& config) {
  if (config.capacity_j <= 0.0 || config.idle_power_mw < 0.0) {
    throw std::invalid_argument("battery_replay: invalid battery configuration");
  }
  BatteryReport report;
  const double idle_w = config.idle_power_mw / 1e3;
  double charge_j = config.capacity_j;
  double now_s = 0.0;

  for (const RequestRecord& record : records) {
    if (record.completion_s < now_s - 1e-9) {
      throw std::invalid_argument("battery_replay: records not ordered by completion");
    }
    // Idle drain until this request completes.
    const double idle_draw = idle_w * (record.completion_s - now_s);
    if (charge_j <= idle_draw) {
      report.time_to_empty_s = now_s + charge_j / idle_w;
      report.idle_energy_j += charge_j;
      charge_j = 0.0;
      const double elapsed = report.time_to_empty_s;
      report.mean_power_w =
          elapsed > 0.0 ? (report.inference_energy_j + report.idle_energy_j) / elapsed : 0.0;
      return report;
    }
    charge_j -= idle_draw;
    report.idle_energy_j += idle_draw;
    now_s = record.completion_s;

    const double inference_j = record.energy_mj / 1e3;
    if (charge_j <= inference_j) {
      report.inference_energy_j += charge_j;
      charge_j = 0.0;
      report.time_to_empty_s = now_s;
      const double elapsed = now_s;
      report.mean_power_w =
          elapsed > 0.0 ? (report.inference_energy_j + report.idle_energy_j) / elapsed : 0.0;
      return report;
    }
    charge_j -= inference_j;
    report.inference_energy_j += inference_j;
    ++report.inferences_served;
  }

  report.survived = true;
  report.time_to_empty_s = now_s;
  report.mean_power_w =
      now_s > 0.0 ? (report.inference_energy_j + report.idle_energy_j) / now_s : 0.0;
  return report;
}

}  // namespace lens::sim
