#include "sim/timeline.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::sim {

double ResourceTimeline::schedule(double ready_time_s, double duration_s) {
  if (duration_s < 0.0) throw std::invalid_argument("ResourceTimeline: negative duration");
  if (ready_time_s < last_ready_s_ - 1e-9) {
    throw std::invalid_argument("ResourceTimeline: jobs must arrive in FIFO order");
  }
  last_ready_s_ = std::max(last_ready_s_, ready_time_s);
  const double start = std::max(ready_time_s, busy_until_s_);
  busy_until_s_ = start + duration_s;
  total_busy_s_ += duration_s;
  ++jobs_;
  return busy_until_s_;
}

double ResourceTimeline::schedule_unordered(double ready_time_s, double duration_s) {
  if (duration_s < 0.0) throw std::invalid_argument("ResourceTimeline: negative duration");
  if (ready_time_s < 0.0) throw std::invalid_argument("ResourceTimeline: negative ready");
  const double start = std::max(ready_time_s, busy_until_s_);
  busy_until_s_ = start + duration_s;
  total_busy_s_ += duration_s;
  ++jobs_;
  return busy_until_s_;
}

}  // namespace lens::sim
