#include "sim/link.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/fault.hpp"

namespace lens::sim {

TimeVaryingLink::TimeVaryingLink(comm::ThroughputTrace trace,
                                 comm::RadioPowerModel power_model)
    : TimeVaryingLink(std::move(trace), power_model, nullptr) {}

TimeVaryingLink::TimeVaryingLink(comm::ThroughputTrace trace,
                                 comm::RadioPowerModel power_model,
                                 const FaultInjector* faults)
    : trace_(std::move(trace)), power_model_(power_model), faults_(faults) {
  if (trace_.size() == 0 || trace_.interval_s <= 0.0) {
    throw std::invalid_argument("TimeVaryingLink: empty trace or bad interval");
  }
  for (double tu : trace_.samples_mbps) {
    if (tu <= 0.0) throw std::invalid_argument("TimeVaryingLink: non-positive throughput");
  }
}

double TimeVaryingLink::throughput_at(double t_s) const {
  if (t_s < 0.0) throw std::invalid_argument("TimeVaryingLink: negative time");
  const auto index = static_cast<std::size_t>(std::floor(t_s / trace_.interval_s));
  const double tu = trace_.samples_mbps[index % trace_.size()];
  return faults_ == nullptr ? tu : tu * faults_->link_factor(t_s);
}

TransferResult TimeVaryingLink::transfer(double start_s, std::uint64_t bytes) const {
  TransferResult result;
  result.start_s = start_s;
  if (bytes == 0) {
    result.end_s = start_s;
    return result;
  }
  double remaining_bits = static_cast<double>(bytes) * 8.0;
  double now = start_s;
  for (;;) {
    const double tu = throughput_at(now);           // Mbps = 1e6 bit/s
    const double rate_bits_per_s = tu * 1e6;
    // Rate is piecewise constant up to the next trace-interval edge or
    // fault-episode edge, whichever comes first.
    double interval_end = (std::floor(now / trace_.interval_s) + 1.0) * trace_.interval_s;
    if (faults_ != nullptr) {
      interval_end = std::min(interval_end, faults_->next_link_boundary(now));
    }
    const double window = interval_end - now;
    const double can_send = rate_bits_per_s * window;
    const double power_mw = power_model_.transmit_power_mw(tu);
    if (can_send >= remaining_bits) {
      const double dt = remaining_bits / rate_bits_per_s;
      result.energy_mj += power_mw * dt;  // mW * s = mJ
      now += dt;
      break;
    }
    result.energy_mj += power_mw * window;
    remaining_bits -= can_send;
    now = interval_end;
  }
  result.end_s = now;
  return result;
}

TransferResult TimeVaryingLink::schedule(double ready_s, std::uint64_t bytes) {
  if (ready_s < 0.0) throw std::invalid_argument("TimeVaryingLink: negative ready time");
  const double start = std::max(ready_s, radio_free_s_);
  TransferResult result = transfer(start, bytes);
  radio_free_s_ = result.end_s;
  radio_busy_s_ += result.duration_s();
  return result;
}

}  // namespace lens::sim
