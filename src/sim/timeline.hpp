#pragma once
// Serial-resource timeline for discrete-event simulation: a FIFO resource
// (the edge accelerator, the radio) that serves one job at a time.

#include <cstddef>

namespace lens::sim {

/// Tracks the completion horizon of a serial FIFO resource.
class ResourceTimeline {
 public:
  /// Schedule a job that becomes ready at `ready_time_s` and occupies the
  /// resource for `duration_s`. Returns its completion time. Jobs must be
  /// scheduled in ready-time order (FIFO); throws std::invalid_argument on
  /// negative durations or out-of-order scheduling beyond tolerance.
  double schedule(double ready_time_s, double duration_s);

  /// As schedule(), but without the FIFO ready-order check: the job queues
  /// behind everything scheduled so far even if its ready time lies in the
  /// past. Used for degraded-mode traffic injected out of arrival order
  /// (timeout fallbacks re-executing on the edge); throws on negative
  /// durations or ready times.
  double schedule_unordered(double ready_time_s, double duration_s);

  /// Time until which the resource is busy (0 when never used).
  double busy_until() const { return busy_until_s_; }

  /// Total busy time accumulated (for utilization metrics).
  double total_busy() const { return total_busy_s_; }

  /// Jobs served.
  std::size_t jobs() const { return jobs_; }

 private:
  double busy_until_s_ = 0.0;
  double last_ready_s_ = 0.0;
  double total_busy_s_ = 0.0;
  std::size_t jobs_ = 0;
};

}  // namespace lens::sim
