#pragma once
// Time-varying wireless uplink for the discrete-event simulator.
//
// The throughput follows a trace (piecewise constant per sampling interval,
// wrapping around past the end), optionally scaled by a fault injector's
// link-outage factor (deep fades). A transfer starting at time t occupies
// the link exclusively (FIFO radio) until the integral of the instantaneous
// rate covers its payload; the transmission energy integrates the radio
// power model over the same piecewise-constant windows, whose boundaries
// are trace-interval edges and fault-episode edges.

#include <cstdint>

#include "comm/commcost.hpp"
#include "comm/trace.hpp"

namespace lens::sim {

class FaultInjector;

/// One completed transfer.
struct TransferResult {
  double start_s = 0.0;
  double end_s = 0.0;
  double energy_mj = 0.0;  ///< radio energy billed to the edge

  double duration_s() const { return end_s - start_s; }
};

/// Piecewise-constant-rate link driven by a throughput trace.
class TimeVaryingLink {
 public:
  TimeVaryingLink(comm::ThroughputTrace trace, comm::RadioPowerModel power_model);

  /// As above, but with link-outage fault episodes scaling the rate.
  /// `faults` is non-owning and may be nullptr (always healthy); it must
  /// outlive the link.
  TimeVaryingLink(comm::ThroughputTrace trace, comm::RadioPowerModel power_model,
                  const FaultInjector* faults);

  /// Instantaneous uplink throughput at absolute time `t_s`, including any
  /// fault-episode fade factor.
  double throughput_at(double t_s) const;

  /// Compute the completion time and radio energy of sending `bytes`
  /// starting exactly at `start_s` (no queueing — see schedule()).
  TransferResult transfer(double start_s, std::uint64_t bytes) const;

  /// FIFO-schedule a transfer that becomes ready at `ready_s`: it starts
  /// when the radio frees up, then runs at the trace's time-varying rate.
  /// Zero-byte transfers complete immediately at the ready time.
  TransferResult schedule(double ready_s, std::uint64_t bytes);

  /// Radio busy time so far (for utilization metrics).
  double total_busy() const { return radio_busy_s_; }
  double busy_until() const { return radio_free_s_; }

 private:
  comm::ThroughputTrace trace_;
  comm::RadioPowerModel power_model_;
  const FaultInjector* faults_ = nullptr;  ///< non-owning; nullptr = healthy
  double radio_free_s_ = 0.0;
  double radio_busy_s_ = 0.0;
};

}  // namespace lens::sim
