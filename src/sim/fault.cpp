#include "sim/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>

#include "par/substream.hpp"

namespace lens::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate_episode(const FaultEpisode& e) {
  if (!std::isfinite(e.start_s) || !std::isfinite(e.end_s) || e.start_s < 0.0 ||
      e.end_s <= e.start_s) {
    throw std::invalid_argument("FaultSchedule: episode needs 0 <= start < end");
  }
  switch (e.fault) {
    case FaultClass::kLinkOutage:
      if (e.magnitude <= 0.0 || e.magnitude > 1.0) {
        throw std::invalid_argument("FaultSchedule: link-outage depth must be in (0,1]");
      }
      break;
    case FaultClass::kRttSpike:
      if (e.magnitude < 0.0) {
        throw std::invalid_argument("FaultSchedule: RTT spike must be non-negative ms");
      }
      break;
    case FaultClass::kEdgeSlowdown:
      if (e.magnitude < 1.0) {
        throw std::invalid_argument("FaultSchedule: edge slowdown factor must be >= 1");
      }
      break;
    case FaultClass::kMachineFailure:
      if (e.magnitude <= 0.0 || e.magnitude > 1.0) {
        throw std::invalid_argument(
            "FaultSchedule: machine-failure fraction must be in (0,1]");
      }
      break;
    case FaultClass::kRegionalBrownout:
      if (e.magnitude <= 0.0 || e.magnitude > 1.0) {
        throw std::invalid_argument(
            "FaultSchedule: brownout depth must be in (0,1]");
      }
      break;
    case FaultClass::kBackhaulBrownout:
      if (e.magnitude <= 0.0 || e.magnitude >= 1.0) {
        throw std::invalid_argument(
            "FaultSchedule: backhaul-brownout depth must be in (0,1) — use a "
            "backhaul outage for a full loss");
      }
      if (e.hop == 0) {
        throw std::invalid_argument(
            "FaultSchedule: backhaul episodes need hop >= 1 (hop 0 is the radio)");
      }
      break;
    case FaultClass::kBackhaulOutage:
      if (e.hop == 0) {
        throw std::invalid_argument(
            "FaultSchedule: backhaul episodes need hop >= 1 (hop 0 is the radio)");
      }
      break;  // magnitude unused
    case FaultClass::kFogSiteFailure:
      if (e.magnitude <= 0.0 || e.magnitude > 1.0) {
        throw std::invalid_argument(
            "FaultSchedule: fog-site failure fraction must be in (0,1]");
      }
      break;
    case FaultClass::kCloudOutage:
      break;  // magnitude unused
  }
}

}  // namespace

std::string fault_class_name(FaultClass fault) {
  switch (fault) {
    case FaultClass::kLinkOutage: return "link-outage";
    case FaultClass::kCloudOutage: return "cloud-outage";
    case FaultClass::kRttSpike: return "rtt-spike";
    case FaultClass::kEdgeSlowdown: return "edge-slowdown";
    case FaultClass::kMachineFailure: return "machine-failure";
    case FaultClass::kRegionalBrownout: return "regional-brownout";
    case FaultClass::kBackhaulBrownout: return "backhaul-brownout";
    case FaultClass::kBackhaulOutage: return "backhaul-outage";
    case FaultClass::kFogSiteFailure: return "fog-site-failure";
  }
  return "unknown";
}

FaultSchedule::FaultSchedule(std::vector<FaultEpisode> episodes)
    : episodes_(std::move(episodes)) {
  for (const FaultEpisode& e : episodes_) validate_episode(e);
  std::stable_sort(episodes_.begin(), episodes_.end(),
                   [](const FaultEpisode& a, const FaultEpisode& b) {
                     return a.start_s < b.start_s;
                   });
}

namespace {

/// Shared episode-generation core: `base_seed` roots every class substream.
/// generate() passes config.seed through unchanged (frozen legacy path);
/// generate_for_device() passes the fleet-mixed per-device seed.
FaultSchedule generate_with_base(const FaultScheduleConfig& config,
                                 std::uint64_t base_seed) {
  if (config.horizon_s <= 0.0 || !std::isfinite(config.horizon_s)) {
    throw std::invalid_argument("FaultSchedule::generate: horizon must be positive");
  }
  if (config.link_outage_rate_hz < 0.0 || config.cloud_outage_rate_hz < 0.0 ||
      config.rtt_spike_rate_hz < 0.0 || config.edge_slowdown_rate_hz < 0.0 ||
      config.machine_failure_rate_hz < 0.0 || config.brownout_rate_hz < 0.0 ||
      config.backhaul_brownout_rate_hz < 0.0 ||
      config.backhaul_outage_rate_hz < 0.0 || config.fog_failure_rate_hz < 0.0) {
    throw std::invalid_argument("FaultSchedule::generate: negative episode rate");
  }
  if (config.link_outage_mean_s <= 0.0 || config.cloud_outage_mean_s <= 0.0 ||
      config.rtt_spike_mean_s <= 0.0 || config.edge_slowdown_mean_s <= 0.0 ||
      config.machine_failure_mean_s <= 0.0 || config.brownout_mean_s <= 0.0 ||
      config.backhaul_brownout_mean_s <= 0.0 ||
      config.backhaul_outage_mean_s <= 0.0 || config.fog_failure_mean_s <= 0.0) {
    throw std::invalid_argument("FaultSchedule::generate: episode means must be positive");
  }
  if ((config.backhaul_brownout_rate_hz > 0.0 ||
       config.backhaul_outage_rate_hz > 0.0) &&
      config.backhaul_hop == 0) {
    throw std::invalid_argument(
        "FaultSchedule::generate: backhaul classes need backhaul_hop >= 1");
  }
  for (const HopFaultConfig& hop : config.extra_hops) {
    if (hop.outage_rate_hz < 0.0 || hop.rtt_spike_rate_hz < 0.0) {
      throw std::invalid_argument("FaultSchedule::generate: negative episode rate");
    }
    if (hop.outage_mean_s <= 0.0 || hop.rtt_spike_mean_s <= 0.0) {
      throw std::invalid_argument("FaultSchedule::generate: episode means must be positive");
    }
  }
  std::vector<FaultEpisode> episodes;

  // One independent RNG substream per class (splitmix64-mixed class salt):
  // enabling or tuning one class never perturbs another's episodes.
  const auto substream = [&](std::uint64_t salt) {
    return std::mt19937_64(par::substream_seed(base_seed, salt));
  };
  const auto renew = [&](FaultClass fault, double rate_hz, double mean_s,
                         double magnitude, std::uint64_t salt, std::size_t hop) {
    if (rate_hz <= 0.0) return;
    std::mt19937_64 rng = substream(salt);
    std::exponential_distribution<double> gap(rate_hz);
    std::exponential_distribution<double> duration(1.0 / mean_s);
    // Renewal process: episodes within a class never overlap.
    double t = gap(rng);
    while (t < config.horizon_s) {
      const double d = duration(rng);
      episodes.push_back({fault, t, t + d, magnitude, hop});
      t += d + gap(rng);
    }
  };
  renew(FaultClass::kLinkOutage, config.link_outage_rate_hz, config.link_outage_mean_s,
        config.link_outage_depth, 0x10c4, 0);
  renew(FaultClass::kCloudOutage, config.cloud_outage_rate_hz, config.cloud_outage_mean_s,
        0.0, 0x20c4, 0);
  renew(FaultClass::kRttSpike, config.rtt_spike_rate_hz, config.rtt_spike_mean_s,
        config.rtt_spike_extra_ms, 0x30c4, 0);
  renew(FaultClass::kEdgeSlowdown, config.edge_slowdown_rate_hz,
        config.edge_slowdown_mean_s, config.edge_slowdown_factor, 0x40c4, 0);
  // Datacenter-side classes: fresh salts, so every stream above is
  // byte-identical whether or not these are enabled.
  renew(FaultClass::kMachineFailure, config.machine_failure_rate_hz,
        config.machine_failure_mean_s, config.machine_failure_fraction, 0x50c4, 0);
  renew(FaultClass::kRegionalBrownout, config.brownout_rate_hz,
        config.brownout_mean_s, config.brownout_depth, 0x60c4, 0);
  // Regional classes: fresh salts once more (0x70c4/0x80c4/0x90c4 are
  // disjoint from every class salt above AND from every 0x10000*hop-offset
  // backhaul stream below, which starts at 0x1_00c4), so all six legacy
  // streams stay byte-identical whether or not a region enables these.
  renew(FaultClass::kBackhaulBrownout, config.backhaul_brownout_rate_hz,
        config.backhaul_brownout_mean_s, config.backhaul_brownout_depth, 0x70c4,
        config.backhaul_hop);
  renew(FaultClass::kBackhaulOutage, config.backhaul_outage_rate_hz,
        config.backhaul_outage_mean_s, 0.0, 0x80c4, config.backhaul_hop);
  renew(FaultClass::kFogSiteFailure, config.fog_failure_rate_hz,
        config.fog_failure_mean_s, config.fog_failure_fraction, 0x90c4, 0);
  // Backhaul hops: salts offset per hop (0x10000 * hop keeps them disjoint
  // from every class salt above), so the hop-0 schedule is byte-identical
  // whether or not any backhaul class is enabled.
  for (std::size_t i = 0; i < config.extra_hops.size(); ++i) {
    const HopFaultConfig& hc = config.extra_hops[i];
    const std::size_t hop = i + 1;
    const std::uint64_t offset = 0x10000ull * static_cast<std::uint64_t>(hop);
    renew(FaultClass::kLinkOutage, hc.outage_rate_hz, hc.outage_mean_s, hc.outage_depth,
          0x10c4 + offset, hop);
    renew(FaultClass::kRttSpike, hc.rtt_spike_rate_hz, hc.rtt_spike_mean_s,
          hc.rtt_spike_extra_ms, 0x30c4 + offset, hop);
  }
  episodes.insert(episodes.end(), config.scripted.begin(), config.scripted.end());
  return FaultSchedule(std::move(episodes));
}

}  // namespace

FaultSchedule FaultSchedule::generate(const FaultScheduleConfig& config) {
  return generate_with_base(config, static_cast<std::uint64_t>(config.seed));
}

FaultSchedule FaultSchedule::generate_for_device(const FaultScheduleConfig& config,
                                                 std::uint64_t fleet_seed,
                                                 std::uint64_t device_id) {
  return generate_with_base(config, par::substream_seed(fleet_seed, device_id));
}

FaultSchedule FaultSchedule::generate_for_region(const FaultScheduleConfig& config,
                                                 std::uint64_t fleet_seed,
                                                 std::uint64_t region_id) {
  return generate_with_base(
      config,
      par::substream_seed(par::substream_seed(fleet_seed, kRegionStreamSalt),
                          region_id));
}

std::size_t FaultSchedule::count(FaultClass fault) const {
  std::size_t n = 0;
  for (const FaultEpisode& e : episodes_) {
    if (e.fault == fault) ++n;
  }
  return n;
}

FaultInjector::FaultInjector(FaultSchedule schedule) : schedule_(std::move(schedule)) {
  for (const FaultEpisode& e : schedule_.episodes()) {
    by_class_[static_cast<std::size_t>(e.fault)].push_back(e);
  }
}

const std::vector<FaultEpisode>& FaultInjector::of(FaultClass fault) const {
  return by_class_[static_cast<std::size_t>(fault)];
}

double FaultInjector::link_factor(double t_s, std::size_t hop) const {
  double factor = 1.0;
  for (const FaultEpisode& e : of(FaultClass::kLinkOutage)) {
    if (e.start_s > t_s) break;  // start-sorted: nothing later can cover t
    if (e.hop == hop && e.covers(t_s)) factor = std::min(factor, e.magnitude);
  }
  return factor;
}

bool FaultInjector::cloud_unavailable(double t_s) const {
  for (const FaultEpisode& e : of(FaultClass::kCloudOutage)) {
    if (e.start_s > t_s) break;
    if (e.covers(t_s)) return true;
  }
  return false;
}

double FaultInjector::cloud_recovery_time(double t_s) const {
  double t = t_s;
  // Chained windows: recovering into another outage keeps pushing forward.
  for (const FaultEpisode& e : of(FaultClass::kCloudOutage)) {
    if (e.covers(t)) t = e.end_s;
  }
  return t;
}

double FaultInjector::rtt_extra_ms(double t_s, std::size_t hop) const {
  double extra = 0.0;
  for (const FaultEpisode& e : of(FaultClass::kRttSpike)) {
    if (e.start_s > t_s) break;
    if (e.hop == hop && e.covers(t_s)) extra = std::max(extra, e.magnitude);
  }
  return extra;
}

double FaultInjector::edge_slowdown(double t_s) const {
  double factor = 1.0;
  for (const FaultEpisode& e : of(FaultClass::kEdgeSlowdown)) {
    if (e.start_s > t_s) break;
    if (e.covers(t_s)) factor = std::max(factor, e.magnitude);
  }
  return factor;
}

double FaultInjector::machine_failure_fraction(double t_s) const {
  double fraction = 0.0;
  for (const FaultEpisode& e : of(FaultClass::kMachineFailure)) {
    if (e.start_s > t_s) break;
    if (e.covers(t_s)) fraction = std::max(fraction, e.magnitude);
  }
  return fraction;
}

double FaultInjector::brownout_factor(double t_s) const {
  double factor = 1.0;
  for (const FaultEpisode& e : of(FaultClass::kRegionalBrownout)) {
    if (e.start_s > t_s) break;
    if (e.covers(t_s)) factor = std::min(factor, 1.0 - e.magnitude);
  }
  return factor;
}

double FaultInjector::backhaul_factor(double t_s, std::size_t hop) const {
  double factor = 1.0;
  for (const FaultEpisode& e : of(FaultClass::kBackhaulBrownout)) {
    if (e.start_s > t_s) break;
    if (e.hop == hop && e.covers(t_s)) factor = std::min(factor, 1.0 - e.magnitude);
  }
  return factor;
}

bool FaultInjector::backhaul_unavailable(double t_s, std::size_t hop) const {
  for (const FaultEpisode& e : of(FaultClass::kBackhaulOutage)) {
    if (e.start_s > t_s) break;
    if (e.hop == hop && e.covers(t_s)) return true;
  }
  return false;
}

double FaultInjector::fog_failure_fraction(double t_s) const {
  double fraction = 0.0;
  for (const FaultEpisode& e : of(FaultClass::kFogSiteFailure)) {
    if (e.start_s > t_s) break;
    if (e.covers(t_s)) fraction = std::max(fraction, e.magnitude);
  }
  return fraction;
}

double FaultInjector::next_link_boundary(double t_s, std::size_t hop) const {
  double next = kInf;
  for (const FaultEpisode& e : of(FaultClass::kLinkOutage)) {
    if (e.hop != hop) continue;
    if (e.start_s > t_s) {
      next = std::min(next, e.start_s);
      break;  // starts are sorted; later episodes begin even later
    }
    if (e.end_s > t_s) next = std::min(next, e.end_s);
  }
  return next;
}

double FaultInjector::degraded_time(double horizon_s) const {
  // Episodes are start-sorted across classes: one merge pass over the union.
  double covered = 0.0;
  double open_until = 0.0;
  for (const FaultEpisode& e : schedule_.episodes()) {
    const double start = std::min(std::max(e.start_s, open_until), horizon_s);
    const double end = std::min(e.end_s, horizon_s);
    if (end > start) covered += end - start;
    open_until = std::max(open_until, end);
  }
  return covered;
}

}  // namespace lens::sim
