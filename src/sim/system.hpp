#pragma once
// Discrete-event edge-cloud system simulation (extension).
//
// The paper's evaluation costs one inference in isolation; real deployments
// serve *streams* of requests, where the edge accelerator and the radio are
// serial resources that queue. This simulator runs a Poisson request stream
// through a deployed model's options: the edge executes prefixes FIFO, the
// radio transmits FIFO at the trace's time-varying rate, the cloud finishes
// suffixes with unbounded parallelism (its latency is the option's
// cloud_latency_ms). Outputs: end-to-end latency percentiles, edge energy,
// and resource utilizations — revealing the throughput ceilings and the
// load-shedding value of partitioned deployments that single-shot analysis
// cannot see.
//
// Fault injection (SimConfig::faults): a seeded FaultSchedule overlays link
// fades, cloud-unavailability windows, RTT spikes, and edge slowdown onto
// the run. Requests whose cloud suffix lands in an unavailability window
// time out after timeout_ms, retry with exponential backoff up to
// max_retries, and finally fall back to re-execution on the cheapest
// memory-feasible edge-only option (or are dropped when none exists);
// SimStats accounts the degradation. Everything — arrivals, faults, retry
// outcomes — derives from SimConfig seeds before/within the serial event
// loop, so the same seed yields bit-identical SimStats at any thread count.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cloud/machine.hpp"
#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "runtime/threshold.hpp"
#include "sim/fault.hpp"
#include "sim/link.hpp"
#include "sim/timeline.hpp"

namespace lens::sim {

/// How requests choose their deployment option.
enum class DispatchPolicy {
  kFixed,       ///< always SimConfig::fixed_option
  kDynamic,     ///< cheapest option for the link's current throughput
  kQueueAware,  ///< earliest estimated completion given current queues
};

struct SimConfig {
  double duration_s = 600.0;        ///< arrival horizon (jobs drain afterwards)
  double arrival_rate_hz = 5.0;     ///< Poisson arrival intensity
  unsigned seed = 1;
  DispatchPolicy policy = DispatchPolicy::kFixed;
  std::size_t fixed_option = 0;
  runtime::OptimizeFor metric = runtime::OptimizeFor::kLatency;  ///< dynamic ranking
  /// Soft deadline for SLO accounting (0 = disabled): requests completing
  /// later than this are counted as violations (still served).
  double deadline_ms = 0.0;

  /// Fault injection (defaults: no faults). horizon_s == 0 derives the
  /// episode horizon from the run (2x duration_s, covering the drain).
  FaultScheduleConfig faults;
  /// K-tier plans only: nominal throughput of each hop past the radio
  /// (backhaul_tu_mbps[i] feeds hop i + 1). Required to match the plan's
  /// hop count; backhaul transfers run at these rates, stretched by any
  /// active per-hop deep-fade episode. Leave empty for two-tier plans.
  std::vector<double> backhaul_tu_mbps;
  /// Client-side timeout armed when a transmitted payload reaches an
  /// unavailable cloud: the attempt fails this many ms after send
  /// completion. Must be positive when any fault class is enabled.
  double timeout_ms = 500.0;
  /// Failed attempts are retried with exponential backoff (base
  /// retry_backoff_ms, doubling per attempt) up to max_retries times, then
  /// fall back to the cheapest edge-only option — or are dropped when the
  /// option set has none (e.g. the memory budget removed All-Edge).
  std::size_t max_retries = 2;
  double retry_backoff_ms = 100.0;
  /// Deterministic per-device retry jitter: each backoff delay is scaled by
  /// a factor drawn uniformly from [1 - j/2, 1 + j/2) on a substream rooted
  /// at par::substream_seed over (seed, device_id), so devices sharing an
  /// outage desynchronize instead of retrying in lockstep. 0 disables
  /// (legacy bit-identical schedule); must lie in [0, 1].
  double retry_jitter = 0.0;
  /// Identity decorrelating this device's jitter/breaker substreams from
  /// its fleet peers'.
  std::uint64_t device_id = 0;
  /// Circuit breaker: after this many consecutive failed cloud attempts
  /// (timeouts or sheds) the breaker opens — requests fast-fail to the
  /// edge-only fallback without transmitting until breaker_open_ms have
  /// passed, then a single half-open probe decides reclose vs. re-open
  /// (probe delay jittered per device like the backoff). 0 disables; the
  /// breaker also stays disabled when the option set has no edge fallback.
  std::size_t breaker_failures = 0;
  double breaker_open_ms = 2000.0;
  /// Finite-cloud model (std::nullopt = the paper's infinite cloud): the
  /// suffix of every cloud-reaching request must win a bounded machine-pool
  /// slot or be shed, and queueing + machine-speed service replace the
  /// constant cloud_latency_ms. A pool at capacity 1000 layer-ms/s with no
  /// contention reproduces the infinite-cloud timings exactly.
  std::optional<cloud::CloudConfig> cloud;
};

/// Per-request outcome.
struct RequestRecord {
  double arrival_s = 0.0;
  double completion_s = 0.0;
  std::size_t option = 0;
  double latency_ms = 0.0;
  double energy_mj = 0.0;  ///< edge compute + radio energy
  /// Degradation trail: cloud attempts that timed out, whether the request
  /// was finally served by edge re-execution, and whether it was dropped
  /// (no edge fallback available). Dropped requests still record their
  /// give-up time in completion_s / latency_ms but are excluded from the
  /// latency and throughput aggregates.
  std::size_t timeouts = 0;
  bool fell_back = false;
  bool dropped = false;
};

/// Aggregate results of one simulation run.
struct SimStats {
  std::size_t completed = 0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double total_energy_mj = 0.0;
  double energy_per_inference_mj = 0.0;
  double edge_utilization = 0.0;  ///< edge busy time / makespan
  double link_utilization = 0.0;  ///< radio busy time / makespan
  double makespan_s = 0.0;        ///< last completion
  double throughput_hz = 0.0;     ///< completed / makespan
  std::size_t deadline_violations = 0;  ///< requests later than the deadline
  double violation_rate = 0.0;          ///< violations / completed (0 if disabled)

  // ---- degradation accounting (all zero / 1.0 on a fault-free run) ----
  std::size_t timeouts = 0;             ///< cloud attempts that timed out
  std::size_t retries = 0;              ///< backoff re-attempts issued
  std::size_t fallback_executions = 0;  ///< requests re-run on the edge
  std::size_t dropped = 0;              ///< requests lost (no edge fallback)
  double availability = 1.0;            ///< completed / (completed + dropped)
  /// Served requests per second of makespan that also met the deadline
  /// (== throughput_hz when no deadline is configured).
  double goodput_hz = 0.0;
  double degraded_time_s = 0.0;  ///< makespan time under >= 1 fault episode
  double degraded_fraction = 0.0;
  /// Fault episodes injected, by class (schedule-level, not per-request).
  std::size_t link_outage_episodes = 0;
  std::size_t cloud_outage_episodes = 0;
  std::size_t rtt_spike_episodes = 0;
  std::size_t edge_slowdown_episodes = 0;
  std::size_t machine_failure_episodes = 0;
  std::size_t brownout_episodes = 0;

  // ---- finite-cloud / breaker accounting (zero without SimConfig::cloud
  //      or breaker_failures) ----
  std::size_t shed = 0;           ///< cloud admissions rejected by the pool
  std::size_t breaker_trips = 0;  ///< closed -> open transitions
  double breaker_open_time_s = 0.0;  ///< total time spent open
  double datacenter_energy_j = 0.0;  ///< machine-pool energy over makespan
};

/// Simulates one deployed model under load.
class EdgeCloudSystem {
 public:
  /// `options`: the model's deployment options (from Algorithm 1).
  /// `comm` supplies the radio power model and round-trip latency; `trace`
  /// drives the link's instantaneous throughput.
  EdgeCloudSystem(std::vector<core::DeploymentOption> options, comm::CommModel comm,
                  comm::ThroughputTrace trace, SimConfig config);

  /// Serve a compiled plan: options, comm model, and dispatch cost curves
  /// are all taken from the plan (no curve re-derivation). For K-tier plans
  /// the dispatch curves are the plan's surfaces collapsed onto the radio
  /// axis at SimConfig::backhaul_tu_mbps (which must then match the plan's
  /// hop count), and served requests traverse the whole tier chain: radio
  /// send, per-fog-tier compute, and each backhaul hop at its nominal rate
  /// under that hop's own deep fades and RTT spikes.
  EdgeCloudSystem(const core::DeploymentPlan& plan, comm::ThroughputTrace trace,
                  SimConfig config);

  /// Run the full simulation. Single-shot: a second call throws
  /// std::logic_error (the timelines are consumed).
  SimStats run();

  const std::vector<RequestRecord>& records() const { return records_; }

  /// Cheapest edge-only deployment option (no transmission), if the option
  /// set has one — the forced-all-edge fallback target.
  std::optional<std::size_t> edge_fallback_option() const { return fallback_option_; }

 private:
  std::size_t pick_option(double now_s, const TimeVaryingLink& link,
                          const ResourceTimeline& edge, const FaultInjector& faults) const;
  void find_fallback_option();
  /// K-tier remote chain after the radio send completes at `sent_s`: hop-0
  /// handshake, then alternating fog-tier compute and backhaul transfers at
  /// the configured nominal rates (per-hop fades and RTT spikes applied).
  /// Returns the completion time; `cloud_arrival_s` gets the payload's
  /// arrival at the deepest tier reached — the instant the cloud-outage
  /// check applies for cloud-reaching options.
  double remote_chain(const core::DeploymentOption& option, double sent_s,
                      const FaultInjector& faults, double& cloud_arrival_s) const;
  /// Does `option` transmit over a backhaul hop that a kBackhaulOutage
  /// covers at `now_s`? Such options are unserviceable: dispatch walks the
  /// tier ladder down to whatever stops before the dead hop.
  bool crosses_dead_backhaul(const core::DeploymentOption& option, double now_s,
                             const FaultInjector& faults) const;

  std::vector<core::DeploymentOption> options_;
  comm::CommModel comm_;
  comm::ThroughputTrace trace_;
  SimConfig config_;
  std::vector<runtime::CostCurve> curves_;
  std::vector<RequestRecord> records_;
  std::optional<std::size_t> fallback_option_;
  /// Does any option stop short of the last tier? (At K=2 this is exactly
  /// "an edge-only option exists".) Gates proactive cloud-down dispatch.
  bool has_sub_cloud_option_ = false;
  std::size_t num_hops_ = 1;
  std::vector<comm::CommModel> later_hops_;  ///< hops 1.. of a K-tier plan
  std::vector<double> backhaul_tu_;          ///< nominal rate of hops 1..
  bool ran_ = false;
};

}  // namespace lens::sim
