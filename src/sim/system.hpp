#pragma once
// Discrete-event edge-cloud system simulation (extension).
//
// The paper's evaluation costs one inference in isolation; real deployments
// serve *streams* of requests, where the edge accelerator and the radio are
// serial resources that queue. This simulator runs a Poisson request stream
// through a deployed model's options: the edge executes prefixes FIFO, the
// radio transmits FIFO at the trace's time-varying rate, the cloud finishes
// suffixes with unbounded parallelism (its latency is the option's
// cloud_latency_ms). Outputs: end-to-end latency percentiles, edge energy,
// and resource utilizations — revealing the throughput ceilings and the
// load-shedding value of partitioned deployments that single-shot analysis
// cannot see.

#include <cstddef>
#include <vector>

#include "comm/commcost.hpp"
#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "runtime/threshold.hpp"
#include "sim/link.hpp"
#include "sim/timeline.hpp"

namespace lens::sim {

/// How requests choose their deployment option.
enum class DispatchPolicy {
  kFixed,       ///< always SimConfig::fixed_option
  kDynamic,     ///< cheapest option for the link's current throughput
  kQueueAware,  ///< earliest estimated completion given current queues
};

struct SimConfig {
  double duration_s = 600.0;        ///< arrival horizon (jobs drain afterwards)
  double arrival_rate_hz = 5.0;     ///< Poisson arrival intensity
  unsigned seed = 1;
  DispatchPolicy policy = DispatchPolicy::kFixed;
  std::size_t fixed_option = 0;
  runtime::OptimizeFor metric = runtime::OptimizeFor::kLatency;  ///< dynamic ranking
  /// Soft deadline for SLO accounting (0 = disabled): requests completing
  /// later than this are counted as violations (still served).
  double deadline_ms = 0.0;
};

/// Per-request outcome.
struct RequestRecord {
  double arrival_s = 0.0;
  double completion_s = 0.0;
  std::size_t option = 0;
  double latency_ms = 0.0;
  double energy_mj = 0.0;  ///< edge compute + radio energy
};

/// Aggregate results of one simulation run.
struct SimStats {
  std::size_t completed = 0;
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  double total_energy_mj = 0.0;
  double energy_per_inference_mj = 0.0;
  double edge_utilization = 0.0;  ///< edge busy time / makespan
  double link_utilization = 0.0;  ///< radio busy time / makespan
  double makespan_s = 0.0;        ///< last completion
  double throughput_hz = 0.0;     ///< completed / makespan
  std::size_t deadline_violations = 0;  ///< requests later than the deadline
  double violation_rate = 0.0;          ///< violations / completed (0 if disabled)
};

/// Simulates one deployed model under load.
class EdgeCloudSystem {
 public:
  /// `options`: the model's deployment options (from Algorithm 1).
  /// `comm` supplies the radio power model and round-trip latency; `trace`
  /// drives the link's instantaneous throughput.
  EdgeCloudSystem(std::vector<core::DeploymentOption> options, comm::CommModel comm,
                  comm::ThroughputTrace trace, SimConfig config);

  /// Serve a compiled plan: options, comm model, and dispatch cost curves
  /// are all taken from the plan (no curve re-derivation).
  EdgeCloudSystem(const core::DeploymentPlan& plan, comm::ThroughputTrace trace,
                  SimConfig config);

  /// Run the full simulation. May be called once per instance.
  SimStats run();

  const std::vector<RequestRecord>& records() const { return records_; }

 private:
  std::size_t pick_option(double now_s, const TimeVaryingLink& link,
                          const ResourceTimeline& edge) const;

  std::vector<core::DeploymentOption> options_;
  comm::CommModel comm_;
  comm::ThroughputTrace trace_;
  SimConfig config_;
  std::vector<runtime::CostCurve> curves_;
  std::vector<RequestRecord> records_;
  bool ran_ = false;
};

}  // namespace lens::sim
