#pragma once
// Deterministic fault injection for the serving stack (sim/runtime/core).
//
// A FaultSchedule is a time-sorted set of fault episodes over a finite
// horizon: link outages (deep fades — a throughput multiplier, generalizing
// the two-state Markov overlay of comm::TraceGenerator to continuous time),
// cloud-unavailability windows, round-trip-latency spikes, and edge
// slowdown (straggler) intervals. Schedules are generated from a seed by
// per-class renewal processes with independent RNG substreams, so the same
// seed always yields the same episodes — regardless of thread count and of
// which other fault classes are enabled. A FaultInjector answers the
// point-in-time queries the simulator needs (link factor, cloud
// reachability, extra RTT, edge slowdown) plus the union degraded time used
// for SimStats accounting.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace lens::sim {

/// The fault classes the serving stack degrades under. The first four are
/// network/edge-side (PR 4); kMachineFailure and kRegionalBrownout are
/// datacenter-side and only matter once a finite cloud (lens::cloud) is
/// attached — a fraction of the machine pool dies, or a regional brownout
/// cuts every machine's capacity. The last three are *regional* (shared by
/// every device of one failure domain, not per-device): a backhaul hop's
/// throughput sags or vanishes, or a region's fog site loses machines.
enum class FaultClass {
  kLinkOutage,
  kCloudOutage,
  kRttSpike,
  kEdgeSlowdown,
  kMachineFailure,
  kRegionalBrownout,
  kBackhaulBrownout,
  kBackhaulOutage,
  kFogSiteFailure,
};

inline constexpr std::size_t kNumFaultClasses = 9;

/// Salt mixed into the fleet seed before the region id when deriving a
/// region's fault substream root (see FaultSchedule::generate_for_region).
inline constexpr std::uint64_t kRegionStreamSalt = 0x9e06;

std::string fault_class_name(FaultClass fault);

/// One timed fault episode: [start_s, end_s) with a class-specific severity.
struct FaultEpisode {
  FaultClass fault = FaultClass::kLinkOutage;
  double start_s = 0.0;
  double end_s = 0.0;
  /// kLinkOutage: throughput multiplier in (0, 1]; kRttSpike: added
  /// round-trip milliseconds; kEdgeSlowdown: edge service-time multiplier
  /// >= 1; kCloudOutage: ignored (the cloud is simply unreachable);
  /// kMachineFailure: fraction of the machine pool down in (0, 1];
  /// kRegionalBrownout: fraction of per-machine capacity lost in (0, 1]
  /// (1 = a full datacenter blackout); kBackhaulBrownout: fraction of the
  /// hop's throughput lost in (0, 1) — a full loss is a kBackhaulOutage,
  /// whose magnitude is ignored; kFogSiteFailure: fraction of the region's
  /// fog machines down in (0, 1].
  double magnitude = 0.0;
  /// Which network hop a kLinkOutage / kRttSpike / kBackhaulBrownout /
  /// kBackhaulOutage episode degrades (0 = the device radio, 1 = the first
  /// backhaul, ...; the backhaul classes require hop >= 1). Ignored by the
  /// other classes. K-tier topologies fade and spike each hop independently.
  std::size_t hop = 0;

  bool covers(double t_s) const { return t_s >= start_s && t_s < end_s; }
  double duration_s() const { return end_s - start_s; }
};

/// Renewal knobs for one hop past the device radio (hop h >= 1). Rates of 0
/// disable the class on that hop, mirroring the hop-0 fields of
/// FaultScheduleConfig.
struct HopFaultConfig {
  double outage_rate_hz = 0.0;
  double outage_mean_s = 20.0;
  double outage_depth = 0.05;  ///< throughput multiplier while faded

  double rtt_spike_rate_hz = 0.0;
  double rtt_spike_mean_s = 10.0;
  double rtt_spike_extra_ms = 200.0;
};

/// Seeded episode-generation knobs. Each class is an independent renewal
/// process: inter-episode gaps ~ Exp(rate), durations ~ Exp(mean); a rate
/// of 0 disables the class. `scripted` episodes are merged in verbatim —
/// the hook tests and demos use to place an exact outage window.
struct FaultScheduleConfig {
  unsigned seed = 1;
  /// Episode-generation horizon in seconds; 0 lets the consumer derive it
  /// (EdgeCloudSystem uses twice the arrival horizon so the drain phase is
  /// covered). FaultSchedule::generate requires a positive value.
  double horizon_s = 0.0;

  double link_outage_rate_hz = 0.0;  ///< episodes per second (e.g. 1/120)
  double link_outage_mean_s = 20.0;
  double link_outage_depth = 0.05;  ///< throughput multiplier while faded

  double cloud_outage_rate_hz = 0.0;
  double cloud_outage_mean_s = 30.0;

  double rtt_spike_rate_hz = 0.0;
  double rtt_spike_mean_s = 10.0;
  double rtt_spike_extra_ms = 200.0;

  double edge_slowdown_rate_hz = 0.0;
  double edge_slowdown_mean_s = 15.0;
  double edge_slowdown_factor = 3.0;  ///< edge service-time multiplier

  // Datacenter-side classes (finite cloud only). Fresh RNG substream salts
  // keep every pre-existing class's episode stream byte-identical whether
  // or not these are enabled.
  double machine_failure_rate_hz = 0.0;
  double machine_failure_mean_s = 60.0;
  double machine_failure_fraction = 0.25;  ///< pool fraction down in (0, 1]

  double brownout_rate_hz = 0.0;
  double brownout_mean_s = 45.0;
  double brownout_depth = 0.5;  ///< capacity fraction lost in (0, 1]

  // Regional classes (shared per failure domain; consumed by the fleet's
  // generate_for_region streams). Fresh salts again: enabling any of these
  // leaves every stream above byte-identical. Backhaul episodes land on hop
  // `backhaul_hop` (>= 1); fog-site failures are hop-free.
  double backhaul_brownout_rate_hz = 0.0;
  double backhaul_brownout_mean_s = 90.0;
  double backhaul_brownout_depth = 0.6;  ///< hop throughput fraction lost, (0, 1)

  double backhaul_outage_rate_hz = 0.0;
  double backhaul_outage_mean_s = 30.0;

  double fog_failure_rate_hz = 0.0;
  double fog_failure_mean_s = 120.0;
  double fog_failure_fraction = 0.5;  ///< fog machines down in (0, 1]

  std::size_t backhaul_hop = 1;  ///< hop the regional backhaul classes degrade

  /// Per-hop knobs for the hops past the radio: extra_hops[i] governs hop
  /// i + 1. Generated from RNG substreams disjoint from the hop-0 streams,
  /// so enabling a backhaul fault class never perturbs the hop-0 schedule.
  std::vector<HopFaultConfig> extra_hops;

  std::vector<FaultEpisode> scripted;

  bool any_enabled() const {
    if (link_outage_rate_hz > 0.0 || cloud_outage_rate_hz > 0.0 ||
        rtt_spike_rate_hz > 0.0 || edge_slowdown_rate_hz > 0.0 ||
        machine_failure_rate_hz > 0.0 || brownout_rate_hz > 0.0 ||
        backhaul_brownout_rate_hz > 0.0 || backhaul_outage_rate_hz > 0.0 ||
        fog_failure_rate_hz > 0.0 || !scripted.empty()) {
      return true;
    }
    for (const HopFaultConfig& hop : extra_hops) {
      if (hop.outage_rate_hz > 0.0 || hop.rtt_spike_rate_hz > 0.0) return true;
    }
    return false;
  }
};

/// An immutable, validated, start-time-sorted set of fault episodes.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  /// Validates (finite non-negative times, end > start, magnitudes legal
  /// for their class) and sorts by start time; throws std::invalid_argument.
  explicit FaultSchedule(std::vector<FaultEpisode> episodes);

  /// Deterministic generation from `config` (plus its scripted episodes).
  /// Same seed => identical schedule, independent of which other classes
  /// are enabled; throws std::invalid_argument on bad knobs.
  static FaultSchedule generate(const FaultScheduleConfig& config);

  /// Per-device schedule of a simulated fleet: the device's episode streams
  /// are seeded from par::substream_seed(fleet_seed, device_id), so every
  /// device gets decorrelated episodes and the schedule depends only on
  /// (config, fleet_seed, device_id) — never on sharding or thread count.
  /// config.seed is ignored (the fleet seed replaces it); scripted episodes
  /// are still merged in verbatim on every device.
  static FaultSchedule generate_for_device(const FaultScheduleConfig& config,
                                           std::uint64_t fleet_seed,
                                           std::uint64_t device_id);

  /// Region-shared schedule of one failure domain: seeded from
  /// substream_seed(substream_seed(fleet_seed, kRegionStreamSalt),
  /// region_id), a root disjoint from every per-device substream (device
  /// streams mix the raw fleet seed with the device id; region streams mix a
  /// salted derivative), so regional classes can never collide with a
  /// device's streams. Every device of the region queries the SAME schedule
  /// — that is what makes a backhaul brownout a correlated event.
  static FaultSchedule generate_for_region(const FaultScheduleConfig& config,
                                           std::uint64_t fleet_seed,
                                           std::uint64_t region_id);

  const std::vector<FaultEpisode>& episodes() const { return episodes_; }
  std::size_t count(FaultClass fault) const;
  bool empty() const { return episodes_.empty(); }

 private:
  std::vector<FaultEpisode> episodes_;
};

/// Point-in-time query engine over a FaultSchedule. All queries are O(per-
/// class episodes) worst case and const — safe to share across readers.
class FaultInjector {
 public:
  FaultInjector() = default;  ///< empty schedule: always healthy
  explicit FaultInjector(FaultSchedule schedule);

  /// Throughput multiplier of hop `hop` at `t_s` (1.0 when healthy; the
  /// deepest overlapping fade wins when episodes overlap). Hop 0 is the
  /// device radio — the default keeps legacy two-tier call sites intact.
  double link_factor(double t_s, std::size_t hop = 0) const;
  bool cloud_unavailable(double t_s) const;
  /// Earliest time >= t_s at which the cloud is reachable (t_s itself when
  /// it already is).
  double cloud_recovery_time(double t_s) const;
  /// Added round-trip milliseconds on hop `hop` at `t_s` (0 when healthy).
  double rtt_extra_ms(double t_s, std::size_t hop = 0) const;
  /// Edge service-time multiplier at `t_s` (>= 1.0; 1.0 when healthy).
  double edge_slowdown(double t_s) const;
  /// Fraction of the cloud machine pool down at `t_s` (0 when healthy; the
  /// deepest overlapping failure wins).
  double machine_failure_fraction(double t_s) const;
  /// Per-machine capacity multiplier at `t_s` in [0, 1] (1 when healthy;
  /// overlapping brownouts compound to the deepest one).
  double brownout_factor(double t_s) const;
  /// Backhaul throughput multiplier of hop `hop` at `t_s`: 1 when healthy,
  /// 1 - magnitude of the deepest overlapping kBackhaulBrownout otherwise.
  double backhaul_factor(double t_s, std::size_t hop) const;
  /// True while a kBackhaulOutage covers hop `hop` — the hop is unreachable.
  bool backhaul_unavailable(double t_s, std::size_t hop) const;
  /// Fraction of the region's fog machines down at `t_s` (deepest wins).
  double fog_failure_fraction(double t_s) const;
  /// Next time > t_s at which hop `hop`'s link factor may change (start or
  /// end of a link-outage episode); +infinity when none — the piecewise-
  /// constant boundary the link's transfer integration steps on.
  double next_link_boundary(double t_s, std::size_t hop = 0) const;
  /// Length of [0, horizon_s) covered by at least one episode of any class.
  double degraded_time(double horizon_s) const;

  const FaultSchedule& schedule() const { return schedule_; }

 private:
  const std::vector<FaultEpisode>& of(FaultClass fault) const;

  FaultSchedule schedule_;
  /// Episodes partitioned by class, start-sorted (indices into nothing —
  /// copies; schedules are tiny next to the request stream).
  std::vector<FaultEpisode> by_class_[kNumFaultClasses];
};

}  // namespace lens::sim
