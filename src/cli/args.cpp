#include "cli/args.hpp"

#include <stdexcept>

namespace lens::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    args.command_ = argv[i];
    ++i;
  }
  while (i < argc) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw std::invalid_argument(args.context() + "expected --option, got '" + token + "'");
    }
    const std::string body = token.substr(2);
    const std::size_t eq = body.find('=');
    std::string key;
    if (eq == std::string::npos) {
      key = body;
    } else {
      key = body.substr(0, eq);
      if (key.empty()) {
        throw std::invalid_argument(args.context() + "malformed option '" + token + "'");
      }
    }
    if (args.options_.count(key) > 0) {
      throw std::invalid_argument(args.context() + "duplicate option --" + key);
    }
    if (eq != std::string::npos) {
      // --key=value: the only way to pass a value that itself starts with
      // "--" (otherwise it would parse as the next option).
      args.options_[key] = body.substr(eq + 1);
      ++i;
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // A following token that does not start with "--" is this option's
      // value; otherwise the option is a boolean flag.
      args.options_[key] = argv[i + 1];
      i += 2;
    } else {
      args.options_[key] = "true";
      ++i;
    }
  }
  return args;
}

std::string Args::context() const {
  return command_.empty() ? "lens-cli: " : "lens-cli " + command_ + ": ";
}

std::string Args::get(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context() + "--" + key + " expects a number, got '" +
                                it->second + "'");
  }
}

int Args::get_int(const std::string& key, int fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing junk");
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(context() + "--" + key + " expects an integer, got '" +
                                it->second + "'");
  }
}

std::vector<double> Args::get_doubles(const std::string& key,
                                      const std::vector<double>& fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  std::vector<double> values;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string piece =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    try {
      std::size_t consumed = 0;
      const double value = std::stod(piece, &consumed);
      if (consumed != piece.size()) throw std::invalid_argument("trailing junk");
      values.push_back(value);
    } catch (const std::exception&) {
      throw std::invalid_argument(context() + "--" + key +
                                  " expects comma-separated numbers, got '" + text + "'");
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return values;
}

bool Args::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  if (it->second == "true" || it->second == "1" || it->second == "yes") return true;
  if (it->second == "false" || it->second == "0" || it->second == "no") return false;
  throw std::invalid_argument(context() + "--" + key + " expects a boolean, got '" +
                              it->second + "'");
}

void Args::expect_known(const std::set<std::string>& allowed) const {
  for (const auto& [key, value] : options_) {
    if (allowed.count(key) == 0) {
      throw std::invalid_argument(context() + "unknown option --" + key);
    }
  }
}

}  // namespace lens::cli
