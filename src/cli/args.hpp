#pragma once
// Minimal command-line argument parser for the lens-cli tool.
//
// Syntax: positional subcommand first, then --key value or --flag options.
// Typed accessors validate and convert; unknown keys are detected so typos
// fail loudly instead of silently using defaults.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lens::cli {

/// Parsed command line.
class Args {
 public:
  /// Parse argv-style input (argv[0] is skipped). Throws
  /// std::invalid_argument on malformed input (option without value,
  /// value without option).
  static Args parse(int argc, const char* const* argv);

  /// The leading positional token ("" when none).
  const std::string& command() const { return command_; }

  bool has(const std::string& key) const { return options_.count(key) > 0; }

  /// String option with default.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Typed accessors; throw std::invalid_argument on unparseable values.
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Verify every provided option is in `allowed`; throws
  /// std::invalid_argument naming the first unknown option otherwise.
  void expect_known(const std::set<std::string>& allowed) const;

 private:
  std::string command_;
  std::map<std::string, std::string> options_;
};

}  // namespace lens::cli
