#pragma once
// Minimal command-line argument parser for the lens-cli tool.
//
// Syntax: positional subcommand first, then --key value, --key=value, or
// --flag options. --key=value is the escape hatch for values that start
// with "--" themselves. Duplicate options are rejected (no silent
// last-wins), typed accessors validate and convert, and unknown keys are
// detected so typos fail loudly instead of silently using defaults. Error
// messages name the subcommand being parsed.

#include <map>
#include <set>
#include <string>
#include <vector>

namespace lens::cli {

/// Parsed command line.
class Args {
 public:
  /// Parse argv-style input (argv[0] is skipped). Throws
  /// std::invalid_argument on malformed input (option without value,
  /// value without option, duplicate option).
  static Args parse(int argc, const char* const* argv);

  /// The leading positional token ("" when none).
  const std::string& command() const { return command_; }

  bool has(const std::string& key) const { return options_.count(key) > 0; }

  /// String option with default.
  std::string get(const std::string& key, const std::string& fallback = "") const;

  /// Typed accessors; throw std::invalid_argument on unparseable values.
  double get_double(const std::string& key, double fallback) const;
  int get_int(const std::string& key, int fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;
  /// Comma-separated list of numbers (e.g. --hop-bw 5,40). Returns
  /// `fallback` when absent; rejects empty elements and trailing junk.
  std::vector<double> get_doubles(const std::string& key,
                                  const std::vector<double>& fallback = {}) const;

  /// Verify every provided option is in `allowed`; throws
  /// std::invalid_argument naming the first unknown option otherwise.
  void expect_known(const std::set<std::string>& allowed) const;

 private:
  /// Error-message prefix naming the subcommand, e.g. "lens-cli search: ".
  std::string context() const;

  std::string command_;
  std::map<std::string, std::string> options_;
};

}  // namespace lens::cli
