#pragma once
// Subcommand implementations behind the lens-cli tool. Kept in a library so
// they are unit-testable; the tools/ main is a thin dispatcher.

#include "cli/args.hpp"

namespace lens::cli {

/// Dispatch a parsed command line. Returns a process exit code; prints
/// human-readable results to stdout and errors to stderr.
int run_command(const Args& args);

// Individual subcommands (exposed for tests).
int cmd_evaluate(const Args& args);    ///< deployment options of a preset model
int cmd_search(const Args& args);      ///< run a LENS / Traditional search
int cmd_thresholds(const Args& args);  ///< runtime switching thresholds
int cmd_simulate(const Args& args);    ///< serving simulation under load
int cmd_faults(const Args& args);      ///< fault pricing + degraded serving
int cmd_fleet(const Args& args);       ///< fleet-scale SoA serving simulation
int cmd_cloud(const Args& args);       ///< finite-cloud placement-policy duel
int cmd_help();

}  // namespace lens::cli
