#include "cli/commands.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>

#include "core/analysis.hpp"
#include "fleet/fleet.hpp"
#include "io/io.hpp"
#include "core/export.hpp"
#include "core/nas.hpp"
#include "core/plan.hpp"
#include "core/robust.hpp"
#include "core/topology.hpp"
#include "dnn/presets.hpp"
#include "dnn/summary.hpp"
#include "par/runtime.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "runtime/threshold_io.hpp"
#include "sim/system.hpp"
#include "viz/ascii.hpp"

namespace lens::cli {

namespace {

comm::WirelessTechnology parse_tech(const std::string& name) {
  if (name == "wifi") return comm::WirelessTechnology::kWifi;
  if (name == "lte") return comm::WirelessTechnology::kLte;
  if (name == "3g") return comm::WirelessTechnology::k3G;
  throw std::invalid_argument("unknown --tech '" + name + "' (wifi|lte|3g)");
}

perf::DeviceProfile parse_device(const std::string& name) {
  if (name == "tx2-gpu") return perf::jetson_tx2_gpu();
  if (name == "tx2-cpu") return perf::jetson_tx2_cpu();
  if (name == "embedded-cpu") return perf::embedded_cpu();
  if (name == "datacenter-gpu") return perf::datacenter_gpu();
  throw std::invalid_argument("unknown device '" + name +
                              "' (tx2-gpu|tx2-cpu|embedded-cpu|datacenter-gpu)");
}

dnn::Architecture parse_arch(const std::string& name) {
  if (name == "alexnet") return dnn::alexnet();
  if (name == "vgg16") return dnn::vgg16();
  throw std::invalid_argument("unknown --arch '" + name + "' (alexnet|vgg16)");
}

cloud::PlacementPolicy parse_policy(const std::string& name) {
  if (name == "greedy") return cloud::PlacementPolicy::kGreedyFirstFit;
  if (name == "energy") return cloud::PlacementPolicy::kEnergyBestFit;
  throw std::invalid_argument("unknown --cloud-policy '" + name + "' (greedy|energy)");
}

/// Parse "--brownout start,duration,depth" into a scripted regional-brownout
/// episode (depth = capacity fraction lost, in (0, 1]).
sim::FaultEpisode parse_brownout(const Args& args) {
  const std::vector<double> fields = args.get_doubles("brownout");
  if (fields.size() != 3) {
    throw std::invalid_argument(
        "--brownout expects start,duration,depth (seconds, seconds, capacity "
        "fraction lost in (0,1])");
  }
  sim::FaultEpisode episode;
  episode.fault = sim::FaultClass::kRegionalBrownout;
  episode.start_s = fields[0];
  episode.end_s = fields[0] + fields[1];
  episode.magnitude = fields[2];
  return episode;
}

/// Parse "--region-brownout region,start,duration,depth" into a scripted
/// backhaul brownout on hop 1 of that one region (depth = fraction of the
/// hop's throughput lost, in (0, 1) — a full loss is an outage).
fleet::RegionEpisode parse_region_brownout(const Args& args, std::size_t num_regions) {
  const std::vector<double> fields = args.get_doubles("region-brownout");
  if (fields.size() != 4) {
    throw std::invalid_argument(
        "--region-brownout expects region,start,duration,depth (region index, "
        "seconds, seconds, backhaul throughput fraction lost in (0,1))");
  }
  if (!(fields[0] >= 0.0) || fields[0] >= static_cast<double>(num_regions)) {
    throw std::invalid_argument(
        "--region-brownout region index must be in [0, --regions)");
  }
  fleet::RegionEpisode re;
  re.region = static_cast<std::uint32_t>(fields[0]);
  re.episode.fault = sim::FaultClass::kBackhaulBrownout;
  re.episode.hop = 1;
  re.episode.start_s = fields[1];
  re.episode.end_s = fields[1] + fields[2];
  re.episode.magnitude = fields[3];
  return re;
}

struct Rig {
  perf::DeviceSimulator simulator;
  perf::RooflinePredictor predictor;
  comm::CommModel comm;
  std::string tech_name;
  /// 2 (classic edge-cloud) or 3 (edge-fog-cloud preset).
  std::size_t tiers = 2;
  /// Fog-node performance model for --tiers 3; heap-held so TierSpec's
  /// non-owning pointer stays valid across Rig moves.
  std::shared_ptr<perf::RooflinePredictor> fog_predictor;
  std::string fog_name;
  /// Pricing throughputs, one per hop (radio first). {tu} for two-tier.
  std::vector<double> hop_tu;

  /// Per-command --tu defaults differ (search prices at the paper's 3 Mbps,
  /// the serving commands at 10), so the caller passes its own.
  static Rig from_args(const Args& args, double default_tu = 3.0) {
    perf::DeviceSimulator sim(parse_device(args.get("device", "tx2-gpu")));
    perf::RooflinePredictor predictor =
        perf::RooflinePredictor::train(sim, {.samples_per_kind = 400, .seed = 11});
    const comm::WirelessTechnology tech = parse_tech(args.get("tech", "wifi"));
    comm::CommModel comm(tech, args.get_double("rtt", 5.0));
    Rig rig{std::move(sim), std::move(predictor), comm, technology_name(tech)};

    const int tiers = args.get_int("tiers", 2);
    if (tiers == 1) {
      throw std::invalid_argument(
          "--tiers 1 leaves nothing to partition; use --tiers 2 (edge-cloud) "
          "or --tiers 3 (edge-fog-cloud)");
    }
    if (tiers != 2 && tiers != 3) {
      throw std::invalid_argument("--tiers supports the built-in presets 2 and 3, got " +
                                  std::to_string(tiers));
    }
    rig.tiers = static_cast<std::size_t>(tiers);
    if (args.has("fog-device") && rig.tiers != 3) {
      throw std::invalid_argument("--fog-device only applies to --tiers 3");
    }
    if (rig.tiers == 3) {
      rig.fog_name = args.get("fog-device", "datacenter-gpu");
      perf::DeviceSimulator fog_sim(parse_device(rig.fog_name));
      rig.fog_predictor = std::make_shared<perf::RooflinePredictor>(
          perf::RooflinePredictor::train(fog_sim, {.samples_per_kind = 400, .seed = 11}));
    }

    const double tu = args.get_double("tu", default_tu);
    if (args.has("hop-bw")) {
      if (args.has("tu")) {
        throw std::invalid_argument(
            "--hop-bw already sets the radio throughput (first entry); drop --tu");
      }
      const std::vector<double> hops = args.get_doubles("hop-bw");
      if (hops.size() != rig.tiers - 1) {
        throw std::invalid_argument(
            "--hop-bw expects " + std::to_string(rig.tiers - 1) +
            " comma-separated Mbps values (one per hop, radio first) for --tiers " +
            std::to_string(rig.tiers) + ", got " + std::to_string(hops.size()));
      }
      for (double mbps : hops) {
        if (!(mbps > 0.0)) {
          throw std::invalid_argument("--hop-bw throughputs must be positive Mbps");
        }
      }
      rig.hop_tu = hops;
    } else {
      rig.hop_tu = {tu};
      // Default backhaul: 10x the radio — wired fog-to-cloud links dwarf
      // the device's wireless hop. Override with --hop-bw.
      if (rig.tiers == 3) rig.hop_tu.push_back(10.0 * tu);
    }
    return rig;
  }

  /// Evaluator over the configured hierarchy. For --tiers 2 this is the
  /// legacy two-tier evaluator (bit-identical pricing path).
  core::DeploymentEvaluator make_evaluator() const {
    if (tiers == 2) return core::DeploymentEvaluator(predictor, comm);
    core::EdgeFogCloudConfig config;
    config.radio = comm;
    return core::DeploymentEvaluator(
        core::edge_fog_cloud(predictor, *fog_predictor, nullptr, config));
  }
};

/// Price through the frozen scalar path at K=2, the per-hop vector at K=3.
core::DeploymentEvaluation price_plan(const core::DeploymentPlan& plan, const Rig& rig) {
  return rig.tiers == 2 ? plan.price(rig.hop_tu[0]) : plan.price(rig.hop_tu);
}

}  // namespace

int cmd_evaluate(const Args& args) {
  args.expect_known({"arch", "tu", "tech", "rtt", "device", "summary", "threads", "tiers",
                     "fog-device", "hop-bw"});
  Rig rig = Rig::from_args(args, 3.0);
  const dnn::Architecture arch = parse_arch(args.get("arch", "alexnet"));
  if (args.get_bool("summary")) std::printf("%s\n", dnn::summary(arch).c_str());

  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const core::DeploymentEvaluation result = price_plan(evaluator.compile(arch), rig);
  std::printf("%s @ %.1f Mbps %s (RTT %.0f ms, %s", arch.name().c_str(), rig.hop_tu[0],
              rig.tech_name.c_str(), rig.comm.round_trip_ms(),
              rig.simulator.profile().name.c_str());
  if (rig.tiers == 3) {
    std::printf("; fog %s, backhaul %.1f Mbps", rig.fog_name.c_str(), rig.hop_tu[1]);
  }
  std::printf(")\n");
  std::printf("%-20s %12s %12s %12s\n", "option", "latency(ms)", "energy(mJ)", "tx bytes");
  for (const core::DeploymentOption& o : result.options) {
    std::printf("%-20s %12.1f %12.1f %12llu\n", o.label(arch).c_str(), o.latency_ms,
                o.energy_mj, static_cast<unsigned long long>(o.tx_bytes));
  }
  std::printf("best latency: %s | best energy: %s\n",
              result.latency_choice().label(arch).c_str(),
              result.energy_choice().label(arch).c_str());
  if (rig.tiers == 3) {
    const core::DeploymentOption& choice = result.latency_choice();
    std::printf("%s\n", viz::tier_diagram(evaluator.topology().tier_names(), choice.cuts,
                                          arch.num_layers(), choice.hop_tx_bytes)
                            .c_str());
  }
  return 0;
}

int cmd_search(const Args& args) {
  args.expect_known({"iterations", "initial", "tu", "tech", "rtt", "device", "seed", "mode",
                     "strategy", "out", "front-out", "resume", "threads", "checkpoint",
                     "checkpoint-period", "checkpoint-keep", "resume-run", "tiers",
                     "fog-device", "hop-bw"});
  Rig rig = Rig::from_args(args, 3.0);
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.mobo.num_iterations = static_cast<std::size_t>(args.get_int("iterations", 60));
  config.mobo.num_initial = static_cast<std::size_t>(args.get_int("initial", 12));
  config.mobo.seed = static_cast<unsigned>(args.get_int("seed", 1));
  config.nsga2.seed = config.mobo.seed;
  config.tu_mbps = rig.hop_tu[0];
  if (rig.tiers == 3) config.hop_tu_mbps = rig.hop_tu;
  const std::string mode = args.get("mode", "lens");
  if (mode == "lens") {
    config.mode = core::ObjectiveMode::kBestDeployment;
  } else if (mode == "traditional") {
    config.mode = core::ObjectiveMode::kAllEdgeOnly;
  } else {
    throw std::invalid_argument("unknown --mode '" + mode + "' (lens|traditional)");
  }
  const std::string strategy = args.get("strategy", "mobo");
  if (strategy == "mobo") {
    config.strategy = core::SearchStrategy::kMobo;
  } else if (strategy == "nsga2") {
    config.strategy = core::SearchStrategy::kNsga2;
  } else if (strategy == "random") {
    config.strategy = core::SearchStrategy::kRandom;
  } else {
    throw std::invalid_argument("unknown --strategy '" + strategy + "' (mobo|nsga2|random)");
  }

  if (args.has("resume")) {
    config.warm_start = core::load_genotypes_csv(space, args.get("resume"));
    std::printf("warm-starting from %zu checkpointed candidates\n", config.warm_start.size());
  }
  if (args.has("resume-run")) {
    config.resume_run = args.get("resume-run");
    std::printf("resuming run state from %s\n", config.resume_run.c_str());
  }
  if (args.has("checkpoint")) {
    config.checkpoint.directory = args.get("checkpoint");
    config.checkpoint.period =
        static_cast<std::size_t>(args.get_int("checkpoint-period", 10));
    config.checkpoint.keep = static_cast<std::size_t>(args.get_int("checkpoint-keep", 3));
    // SIGINT/SIGTERM flush the in-flight checkpoint chunk instead of
    // killing the process mid-write.
    core::install_interrupt_flush_handler();
  } else if (args.has("checkpoint-period") || args.has("checkpoint-keep")) {
    throw std::invalid_argument("--checkpoint-period/--checkpoint-keep require --checkpoint");
  }

  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();
  if (result.interrupted) {
    std::printf("interrupted after %zu evaluations; state saved to %s\n",
                result.history.size(), config.checkpoint.directory.c_str());
    std::printf("resume with: lens-cli search --resume-run %s --checkpoint %s ...\n",
                config.checkpoint.directory.c_str(), config.checkpoint.directory.c_str());
  }
  std::printf("explored %zu candidates; frontier:\n", result.history.size());
  std::printf("%-14s %8s %10s %10s\n", "architecture", "err(%)", "lat(ms)", "ene(mJ)");
  for (const opt::ParetoPoint& p : result.front.points()) {
    const core::EvaluatedCandidate& c = result.history[p.id];
    std::printf("%-14s %8.1f %10.1f %10.1f\n", c.name.c_str(), c.error_percent,
                c.latency_ms, c.energy_mj);
  }
  const opt::ParetoPoint& knee = core::knee_point(result.front);
  std::printf("knee point: %s\n", result.history[knee.id].name.c_str());
  if (args.has("out")) {
    core::save_history_csv(result, space, args.get("out"));
    std::printf("history written to %s\n", args.get("out").c_str());
  }
  if (args.has("front-out")) {
    core::save_front_csv(result, space, args.get("front-out"));
    std::printf("frontier written to %s\n", args.get("front-out").c_str());
  }
  return result.interrupted ? 130 : 0;
}

int cmd_thresholds(const Args& args) {
  args.expect_known({"arch", "tech", "rtt", "device", "metric", "tu", "save", "threads",
                     "tiers", "fog-device", "hop-bw"});
  Rig rig = Rig::from_args(args, 10.0);
  const dnn::Architecture arch = parse_arch(args.get("arch", "alexnet"));
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  // One compile serves both the printed evaluation and the deployer curves.
  const core::DeploymentPlan plan = evaluator.compile(arch);
  const core::DeploymentEvaluation eval = price_plan(plan, rig);
  const std::string metric_name = args.get("metric", "energy");
  runtime::OptimizeFor metric;
  if (metric_name == "energy") {
    metric = runtime::OptimizeFor::kEnergy;
  } else if (metric_name == "latency") {
    metric = runtime::OptimizeFor::kLatency;
  } else {
    throw std::invalid_argument("unknown --metric '" + metric_name + "' (latency|energy)");
  }
  const runtime::DynamicDeployer deployer =
      rig.tiers == 2 ? runtime::DynamicDeployer(plan, metric, 0.05, 500.0)
                     : runtime::DynamicDeployer(plan, metric, rig.hop_tu, 0.05, 500.0);
  if (rig.tiers == 3) {
    std::printf("(backhaul pinned at %.1f Mbps; thresholds are over the radio hop)\n",
                rig.hop_tu[1]);
  }
  std::printf("%s-optimal deployment vs uplink throughput (%s):\n", metric_name.c_str(),
              arch.name().c_str());
  for (const runtime::DominanceInterval& iv : deployer.intervals()) {
    std::printf("  t_u in [%7.2f, %7.2f) Mbps -> %s\n", iv.tu_low, iv.tu_high,
                eval.options[iv.option_index].label(arch).c_str());
  }
  if (args.has("save")) {
    runtime::SwitchingTable table;
    table.metric = metric;
    for (const core::DeploymentOption& o : eval.options) {
      table.option_labels.push_back(o.label(arch));
    }
    table.intervals = deployer.intervals();
    runtime::save_switching_table(table, args.get("save"));
    std::printf("switching table written to %s (ship this to the device)\n",
                args.get("save").c_str());
  }
  return 0;
}

int cmd_simulate(const Args& args) {
  args.expect_known({"arch", "tech", "rtt", "device", "rate", "duration", "policy", "tu",
                     "deadline", "threads", "tiers", "fog-device", "hop-bw"});
  Rig rig = Rig::from_args(args, 10.0);
  const dnn::Architecture arch = parse_arch(args.get("arch", "alexnet"));
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const double tu = rig.hop_tu[0];
  const core::DeploymentPlan plan = evaluator.compile(arch);
  const core::DeploymentEvaluation eval = price_plan(plan, rig);

  sim::SimConfig config;
  config.arrival_rate_hz = args.get_double("rate", 10.0);
  config.duration_s = args.get_double("duration", 60.0);
  config.deadline_ms = args.get_double("deadline", 0.0);
  if (rig.tiers == 3) config.backhaul_tu_mbps = {rig.hop_tu[1]};
  const std::string policy = args.get("policy", "queue-aware");
  if (policy == "queue-aware") {
    config.policy = sim::DispatchPolicy::kQueueAware;
  } else if (policy == "dynamic") {
    config.policy = sim::DispatchPolicy::kDynamic;
  } else if (policy == "best-latency") {
    config.policy = sim::DispatchPolicy::kFixed;
    config.fixed_option = eval.best_latency_option;
  } else if (policy == "all-edge") {
    config.policy = sim::DispatchPolicy::kFixed;
    for (std::size_t i = 0; i < eval.options.size(); ++i) {
      if (eval.options[i].kind == core::DeploymentKind::kAllEdge) config.fixed_option = i;
    }
  } else {
    throw std::invalid_argument("unknown --policy '" + policy +
                                "' (queue-aware|dynamic|best-latency|all-edge)");
  }

  comm::ThroughputTrace trace;
  trace.samples_mbps = {tu};
  trace.interval_s = 1000.0;
  sim::EdgeCloudSystem system(plan, trace, config);
  const sim::SimStats stats = system.run();
  std::printf("%zu requests over %.0f s at %.1f req/s (%s policy)\n", stats.completed,
              config.duration_s, config.arrival_rate_hz, policy.c_str());
  std::printf("latency ms: mean %.1f | p50 %.1f | p95 %.1f | p99 %.1f | max %.1f\n",
              stats.mean_latency_ms, stats.p50_latency_ms, stats.p95_latency_ms,
              stats.p99_latency_ms, stats.max_latency_ms);
  std::printf("energy: %.1f mJ/inference | edge util %.1f%% | link util %.1f%%\n",
              stats.energy_per_inference_mj, 100.0 * stats.edge_utilization,
              100.0 * stats.link_utilization);
  if (config.deadline_ms > 0.0) {
    std::printf("deadline %.0f ms: %zu violations (%.1f%%)\n", config.deadline_ms,
                stats.deadline_violations, 100.0 * stats.violation_rate);
  }
  return 0;
}

int cmd_faults(const Args& args) {
  args.expect_known({"arch", "tech", "rtt", "device", "tu", "rate", "duration", "seed",
                     "timeout", "retries", "threads", "tiers", "fog-device", "hop-bw",
                     "cloud-machines", "cloud-capacity", "jitter", "breaker"});
  Rig rig = Rig::from_args(args, 10.0);
  const dnn::Architecture arch = parse_arch(args.get("arch", "alexnet"));
  const double tu = rig.hop_tu[0];
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const core::DeploymentPlan plan = evaluator.compile(arch);
  const core::DeploymentEvaluation eval = price_plan(plan, rig);

  if (rig.tiers == 2) {
    // Design-time pricing: what each degraded scenario costs, and whether
    // the option set can serve it at all. (The scenario catalog prices over
    // the scalar radio throughput, so it stays a two-tier analysis.)
    const core::RobustDeploymentEvaluator robust(
        evaluator, core::ThroughputDistribution::from_samples({tu}));
    const core::FaultEvaluation priced =
        robust.evaluate_under_faults(plan, core::default_fault_scenarios(tu));
    std::printf("fault-scenario pricing for %s @ %.1f Mbps nominal:\n", arch.name().c_str(),
                tu);
    std::printf("%-15s %6s %9s %-14s %12s\n", "scenario", "prob", "servable", "best option",
                "latency(ms)");
    for (const core::FaultScenarioOutcome& o : priced.outcomes) {
      std::printf("%-15s %6.2f %9s %-14s %12.1f\n", o.scenario.name.c_str(),
                  o.scenario.probability, o.servable ? "yes" : "NO",
                  o.servable ? eval.options[o.best_option].label(arch).c_str() : "-",
                  o.latency_ms);
    }
    std::printf("availability %.1f%% | expected latency %.1f ms | degradation %.2fx\n\n",
                100.0 * priced.availability, priced.expected_latency_ms,
                priced.degradation_ratio);
  }

  // Serving-time check: inject stochastic faults of all four classes and
  // compare graceful degradation (dynamic dispatch + edge fallback) against
  // a fixed best-latency pin that must ride out every outage.
  sim::SimConfig config;
  config.arrival_rate_hz = args.get_double("rate", 10.0);
  config.duration_s = args.get_double("duration", 60.0);
  config.seed = static_cast<unsigned>(args.get_int("seed", 1));
  config.timeout_ms = args.get_double("timeout", 500.0);
  config.max_retries = static_cast<std::size_t>(args.get_int("retries", 2));
  config.faults.seed = config.seed;
  config.faults.link_outage_rate_hz = 1.0 / 40.0;
  config.faults.link_outage_mean_s = 5.0;
  config.faults.cloud_outage_rate_hz = 1.0 / 60.0;
  config.faults.cloud_outage_mean_s = 8.0;
  config.faults.rtt_spike_rate_hz = 1.0 / 50.0;
  config.faults.edge_slowdown_rate_hz = 1.0 / 80.0;
  // Finite-cloud serving: a bounded machine pool behind the partition point
  // (admission control sheds what the pool cannot absorb), plus the
  // retry-storm-safety knobs — jittered backoff and the circuit breaker.
  config.retry_jitter = args.get_double("jitter", 0.0);
  if (args.has("cloud-machines")) {
    cloud::CloudConfig cloud;
    const int machines = args.get_int("cloud-machines", 8);
    if (machines < 1) {
      throw std::invalid_argument("--cloud-machines expects a positive count");
    }
    cloud.machines = static_cast<std::size_t>(machines);
    cloud.machine.capacity_ms_per_s = args.get_double("cloud-capacity", 4000.0);
    config.cloud = cloud;
    config.faults.machine_failure_rate_hz = 1.0 / 90.0;
    config.faults.brownout_rate_hz = 1.0 / 70.0;
  } else if (args.has("cloud-capacity")) {
    throw std::invalid_argument("--cloud-capacity requires --cloud-machines");
  }
  if (args.has("breaker")) {
    const int failures = args.get_int("breaker", 3);
    if (failures < 0) throw std::invalid_argument("--breaker expects a count >= 0");
    config.breaker_failures = static_cast<std::size_t>(failures);
  }
  if (rig.tiers == 3) {
    // The fog-to-cloud backhaul degrades independently of the radio: its
    // own deep fades and RTT spikes, drawn from disjoint RNG substreams.
    config.backhaul_tu_mbps = {rig.hop_tu[1]};
    sim::HopFaultConfig backhaul;
    backhaul.outage_rate_hz = 1.0 / 50.0;
    backhaul.outage_mean_s = 6.0;
    backhaul.rtt_spike_rate_hz = 1.0 / 70.0;
    config.faults.extra_hops = {backhaul};
  }

  comm::ThroughputTrace trace;
  trace.samples_mbps = {tu};
  trace.interval_s = 1000.0;

  const auto run_policy = [&](sim::DispatchPolicy policy, std::size_t fixed,
                              const char* name) {
    sim::SimConfig scenario_config = config;
    scenario_config.policy = policy;
    scenario_config.fixed_option = fixed;
    sim::EdgeCloudSystem system(plan, trace, scenario_config);
    const sim::SimStats stats = system.run();
    std::printf(
        "%-18s avail %5.1f%% | mean %7.1f ms | p95 %7.1f ms | timeouts %3zu | "
        "retries %3zu | fallbacks %3zu | shed %3zu | brk-open %5.1f s | "
        "degraded %4.1f%%\n",
        name, 100.0 * stats.availability, stats.mean_latency_ms, stats.p95_latency_ms,
        stats.timeouts, stats.retries, stats.fallback_executions, stats.shed,
        stats.breaker_open_time_s, 100.0 * stats.degraded_fraction);
  };
  std::printf("serving under injected faults (%.0f s at %.1f req/s, seed %u):\n",
              config.duration_s, config.arrival_rate_hz, config.seed);
  run_policy(sim::DispatchPolicy::kDynamic, 0, "dynamic+fallback");
  // Pin the comparison to the fastest *cloud-dependent* option: that is the
  // policy that must ride out every outage with timeouts and retries.
  std::size_t pinned = eval.options.size();
  for (std::size_t i = 0; i < eval.options.size(); ++i) {
    if (eval.options[i].tx_bytes == 0) continue;
    if (pinned == eval.options.size() ||
        eval.options[i].latency_ms < eval.options[pinned].latency_ms) {
      pinned = i;
    }
  }
  if (pinned < eval.options.size()) {
    run_policy(sim::DispatchPolicy::kFixed, pinned, "fixed cloud-path");
  }
  return 0;
}

int cmd_fleet(const Args& args) {
  args.expect_known({"arch", "tech", "rtt", "device", "metric", "tu", "devices", "steps",
                     "step-s", "seed", "margin", "qps", "csv", "threads", "tiers",
                     "fog-device", "hop-bw", "cloud-machines", "cloud-capacity",
                     "cloud-policy", "admit-util", "sla", "brownout", "regions",
                     "fog-machines", "region-brownout"});
  Rig rig = Rig::from_args(args, 10.0);
  const dnn::Architecture arch = parse_arch(args.get("arch", "alexnet"));
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const core::DeploymentPlan plan = evaluator.compile(arch);

  fleet::FleetConfig config;
  const long long devices = static_cast<long long>(args.get_double("devices", 100000));
  const long long steps = static_cast<long long>(args.get_double("steps", 64));
  if (devices < 1) throw std::invalid_argument("--devices must be a positive count");
  if (steps < 1) throw std::invalid_argument("--steps must be a positive count");
  config.devices = static_cast<std::size_t>(devices);
  config.steps = static_cast<std::size_t>(steps);
  config.step_s = args.get_double("step-s", 300.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.hysteresis_margin = args.get_double("margin", 0.05);
  config.device_qps = args.get_double("qps", 1.0);
  config.trace.mean_mbps = rig.hop_tu[0];
  const std::string metric_name = args.get("metric", "latency");
  if (metric_name == "energy") {
    config.metric = runtime::OptimizeFor::kEnergy;
  } else if (metric_name == "latency") {
    config.metric = runtime::OptimizeFor::kLatency;
  } else {
    throw std::invalid_argument("unknown --metric '" + metric_name + "' (latency|energy)");
  }
  config.sla_ms = args.get_double("sla", 0.0);
  if (args.has("cloud-machines")) {
    cloud::CloudConfig cloud;
    const int machines = args.get_int("cloud-machines", 64);
    if (machines < 1) {
      throw std::invalid_argument("--cloud-machines expects a positive count");
    }
    cloud.machines = static_cast<std::size_t>(machines);
    cloud.machine.capacity_ms_per_s = args.get_double("cloud-capacity", 4000.0);
    cloud.policy = parse_policy(args.get("cloud-policy", "greedy"));
    cloud.admit_utilization = args.get_double("admit-util", 0.85);
    config.cloud = cloud;
    config.cloud_faults.seed = static_cast<unsigned>(config.seed);
    if (args.has("brownout")) {
      config.cloud_faults.scripted.push_back(parse_brownout(args));
    }
  } else if (args.has("cloud-capacity") || args.has("cloud-policy") ||
             args.has("admit-util") || args.has("brownout")) {
    throw std::invalid_argument(
        "--cloud-capacity/--cloud-policy/--admit-util/--brownout require "
        "--cloud-machines (the finite-cloud model)");
  }
  if (rig.tiers == 3) {
    const int regions = args.get_int("regions", 1);
    if (regions < 1) throw std::invalid_argument("--regions expects a positive count");
    config.num_regions = static_cast<std::size_t>(regions);
    if (args.has("fog-machines")) {
      const int fog_machines = args.get_int("fog-machines", 4);
      if (fog_machines < 1) {
        throw std::invalid_argument("--fog-machines expects a positive count");
      }
      config.fog = cloud::fog_site_defaults(static_cast<std::size_t>(fog_machines));
    }
    if (args.has("region-brownout")) {
      config.region_episodes.push_back(
          parse_region_brownout(args, config.num_regions));
    }
  } else if (args.has("regions") || args.has("fog-machines") ||
             args.has("region-brownout")) {
    throw std::invalid_argument(
        "--regions/--fog-machines/--region-brownout require --tiers 3 "
        "(regional failure domains live on the K-tier hierarchy)");
  }

  fleet::FleetEngine engine = rig.tiers == 2
                                  ? fleet::FleetEngine(plan, config)
                                  : fleet::FleetEngine(plan, rig.hop_tu, config);
  if (rig.tiers == 3) {
    std::printf(
        "(nominal backhaul %.1f Mbps; %zu region(s)%s; devices switch over the "
        "radio hop)\n",
        rig.hop_tu[1], config.num_regions,
        config.fog ? ", finite fog sites" : "");
  }
  const fleet::FleetStats stats = engine.run();

  std::printf("fleet of %zu devices x %zu steps (%.0f s/step) serving %s, %s-optimal\n",
              stats.devices, stats.steps, stats.step_s, arch.name().c_str(),
              metric_name.c_str());
  std::printf("latency ms: mean %.2f | p50 %.2f | p99 %.2f | p99.9 %.2f (oracle mean %.2f)\n",
              stats.mean_latency_ms, stats.p50_latency_ms, stats.p99_latency_ms,
              stats.p999_latency_ms, stats.oracle_mean_latency_ms);
  std::printf("energy: %.2f mJ/inference | %.1f mJ per device-hour (oracle %.2f mJ/inf)\n",
              stats.mean_energy_mj, stats.energy_mj_per_device_hour,
              stats.oracle_mean_energy_mj);
  if (config.cloud) {
    std::printf(
        "cloud load: offered %.0f qps | admitted %.0f qps (peak %.0f) | "
        "offered %.2f Mbps uplink\n",
        stats.mean_offered_qps, stats.mean_cloud_qps, stats.peak_cloud_qps,
        stats.mean_offered_mbps);
    std::printf(
        "admission: shed %llu (%.2f%%) | queue wait %.2f ms | breaker trips %llu | "
        "open %.0f device-s\n",
        static_cast<unsigned long long>(stats.shed), 100.0 * stats.shed_rate,
        stats.mean_queue_wait_ms, static_cast<unsigned long long>(stats.breaker_trips),
        stats.breaker_open_time_s);
    std::printf(
        "datacenter: %s | %zu machines (%.1f active) | energy %.1f kJ\n",
        cloud::placement_policy_name(config.cloud->policy), config.cloud->machines,
        stats.mean_machines_active, stats.datacenter_energy_j / 1e3);
  } else {
    std::printf("cloud load: mean %.0f qps | peak %.0f qps | offered %.2f Mbps uplink\n",
                stats.mean_cloud_qps, stats.peak_cloud_qps, stats.mean_offered_mbps);
  }
  if (config.sla_ms > 0.0) {
    std::printf("SLA %.0f ms: %llu violations (%.2f%%)\n", config.sla_ms,
                static_cast<unsigned long long>(stats.sla_violations),
                100.0 * stats.sla_violation_rate);
  }
  if (!stats.regions.empty()) {
    std::printf(
        "regions: %zu | degraded %llu device-steps | fog shed %llu | fog energy "
        "%.1f kJ\n",
        stats.regions.size(), static_cast<unsigned long long>(stats.degraded_steps),
        static_cast<unsigned long long>(stats.fog_shed), stats.fog_energy_j / 1e3);
    const std::size_t shown = std::min<std::size_t>(stats.regions.size(), 8);
    for (std::size_t r = 0; r < shown; ++r) {
      const fleet::FleetStats::RegionStats& rs = stats.regions[r];
      std::printf(
          "  region %zu: fog %.0f/%.0f qps (shed %.0f) | cloud %.0f/%.0f qps "
          "(shed %.0f) | degraded %.0f dev-s | breaker open %.0f s | backhaul "
          "out %.0f s\n",
          r, rs.fog_admitted_qps, rs.fog_offered_qps, rs.fog_shed_qps,
          rs.cloud_admitted_qps, rs.cloud_offered_qps, rs.cloud_shed_qps,
          rs.degraded_device_s, rs.breaker_open_s, rs.backhaul_out_s);
    }
    if (stats.regions.size() > shown) {
      std::printf("  ... (%zu more regions in --csv)\n", stats.regions.size() - shown);
    }
  }
  std::printf("switching: %llu total | %.3f per device-hour\n",
              static_cast<unsigned long long>(stats.total_switches),
              stats.switches_per_device_hour);
  std::size_t top_bin = 0;
  for (std::size_t b = 1; b < stats.switch_histogram.size(); ++b) {
    if (stats.switch_histogram[b] > 0) top_bin = b;
  }
  std::printf("switch histogram (devices by re-stagings):");
  for (std::size_t b = 0; b <= top_bin; ++b) {
    std::printf(" %zu:%llu", b, static_cast<unsigned long long>(stats.switch_histogram[b]));
  }
  std::printf("\n");
  if (args.has("csv")) {
    const std::string path = args.get("csv");
    io::atomic_write_checked(path, [&](std::ostream& os) { os << stats.csv(); });
    std::printf("fleet stats written to %s\n", path.c_str());
  }
  return 0;
}

int cmd_cloud(const Args& args) {
  args.expect_known({"arch", "tech", "rtt", "device", "tu", "devices", "steps", "step-s",
                     "seed", "qps", "machines", "capacity", "admit-util", "sla",
                     "brownout", "threads", "tiers", "fog-device", "hop-bw"});
  Rig rig = Rig::from_args(args, 10.0);
  // vgg16 at the 10 Mbps default makes All-Cloud the latency winner, so the
  // fleet actually leans on the pool (alexnet mostly stays on the edge).
  const dnn::Architecture arch = parse_arch(args.get("arch", "vgg16"));
  const core::DeploymentEvaluator evaluator = rig.make_evaluator();
  const core::DeploymentPlan plan = evaluator.compile(arch);

  fleet::FleetConfig config;
  const long long devices = static_cast<long long>(args.get_double("devices", 20000));
  const long long steps = static_cast<long long>(args.get_double("steps", 48));
  if (devices < 1) throw std::invalid_argument("--devices must be a positive count");
  if (steps < 1) throw std::invalid_argument("--steps must be a positive count");
  config.devices = static_cast<std::size_t>(devices);
  config.steps = static_cast<std::size_t>(steps);
  config.step_s = args.get_double("step-s", 60.0);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.device_qps = args.get_double("qps", 1.0);
  config.trace.mean_mbps = rig.hop_tu[0];
  config.sla_ms = args.get_double("sla", 300.0);

  cloud::CloudConfig cloud;
  const int machines = args.get_int("machines", 16);
  if (machines < 1) throw std::invalid_argument("--machines expects a positive count");
  cloud.machines = static_cast<std::size_t>(machines);
  cloud.machine.capacity_ms_per_s = args.get_double("capacity", 4000.0);
  cloud.admit_utilization = args.get_double("admit-util", 0.85);
  config.cloud_faults.seed = static_cast<unsigned>(config.seed);

  // Default scenario: a regional brownout cutting 60% of per-machine
  // capacity across the middle third of the run.
  const double horizon_s = static_cast<double>(config.steps) * config.step_s;
  sim::FaultEpisode brownout;
  if (args.has("brownout")) {
    brownout = parse_brownout(args);
  } else {
    brownout.fault = sim::FaultClass::kRegionalBrownout;
    brownout.start_s = horizon_s / 3.0;
    brownout.end_s = 2.0 * horizon_s / 3.0;
    brownout.magnitude = 0.6;
  }
  config.cloud_faults.scripted.push_back(brownout);

  std::printf(
      "finite-cloud policy duel: %zu devices x %zu steps (%.0f s/step) serving %s\n",
      config.devices, config.steps, config.step_s, arch.name().c_str());
  std::printf(
      "pool: %zu machines x %.0f layer-ms/s, admit ceiling %.0f%%; brownout "
      "t=[%.0f,%.0f)s losing %.0f%% capacity; SLA %.0f ms\n",
      cloud.machines, cloud.machine.capacity_ms_per_s, 100.0 * cloud.admit_utilization,
      brownout.start_s, brownout.end_s, 100.0 * brownout.magnitude, config.sla_ms);
  std::printf("%-17s %7s %9s %9s %9s %9s %8s %11s\n", "policy", "shed%", "sla-viol%",
              "p99(ms)", "p999(ms)", "wait(ms)", "active", "energy(kJ)");

  fleet::FleetStats by_policy[2];
  const cloud::PlacementPolicy policies[2] = {cloud::PlacementPolicy::kGreedyFirstFit,
                                             cloud::PlacementPolicy::kEnergyBestFit};
  for (int p = 0; p < 2; ++p) {
    cloud.policy = policies[p];
    config.cloud = cloud;
    fleet::FleetEngine engine = rig.tiers == 2
                                    ? fleet::FleetEngine(plan, config)
                                    : fleet::FleetEngine(plan, rig.hop_tu, config);
    by_policy[p] = engine.run();
    const fleet::FleetStats& stats = by_policy[p];
    std::printf("%-17s %7.2f %9.2f %9.2f %9.2f %9.2f %8.1f %11.1f\n",
                cloud::placement_policy_name(cloud.policy), 100.0 * stats.shed_rate,
                100.0 * stats.sla_violation_rate, stats.p99_latency_ms,
                stats.p999_latency_ms, stats.mean_queue_wait_ms,
                stats.mean_machines_active, stats.datacenter_energy_j / 1e3);
  }
  // The pool is homogeneous, so both policies admit (and shed) identically;
  // consolidation only changes the power bill.
  if (by_policy[0].datacenter_energy_j > 0.0) {
    std::printf("consolidation saves %.1f%% datacenter energy at equal shed rate\n",
                100.0 * (1.0 - by_policy[1].datacenter_energy_j /
                                   by_policy[0].datacenter_energy_j));
  }
  return 0;
}

int cmd_help() {
  std::printf(
      "lens-cli -- LENS edge-cloud NAS toolkit\n\n"
      "usage: lens-cli <command> [--option value ...]\n\n"
      "commands:\n"
      "  evaluate    deployment options of a preset model\n"
      "              --arch alexnet|vgg16 --tu MBPS --tech wifi|lte|3g --rtt MS\n"
      "              --device tx2-gpu|tx2-cpu|embedded-cpu|datacenter-gpu [--summary]\n"
      "  search      run a LENS / Traditional architecture search\n"
      "              --iterations N --initial N --tu MBPS --seed N\n"
      "              --mode lens|traditional --strategy mobo|nsga2|random\n"
      "              [--out history.csv] [--front-out front.csv]\n"
      "              [--resume history.csv]   cross-config warm-start: re-evaluates\n"
      "                                       genotypes from an exported CSV\n"
      "              [--checkpoint DIR]       write rotated run snapshots every\n"
      "                                       --checkpoint-period evals (keep\n"
      "                                       --checkpoint-keep newest, default 10/3);\n"
      "                                       SIGINT/SIGTERM flush before exit\n"
      "              [--resume-run DIR]       exact-state resume from the newest\n"
      "                                       valid snapshot in DIR; continuation\n"
      "                                       is bit-identical to an uninterrupted\n"
      "                                       run with the same config\n"
      "  thresholds  runtime switching thresholds for a preset model\n"
      "              --arch ... --metric latency|energy\n"
      "  simulate    serving simulation under Poisson load\n"
      "              --rate HZ --duration S --policy queue-aware|dynamic|\n"
      "              best-latency|all-edge [--deadline MS]\n"
      "  faults      fault-scenario pricing + serving under injected faults\n"
      "              --arch ... --tu MBPS --rate HZ --duration S --seed N\n"
      "              [--timeout MS] [--retries N]\n"
      "              [--cloud-machines N [--cloud-capacity MS_PER_S]]  finite pool\n"
      "              [--jitter F]   retry-backoff jitter in [0,1]\n"
      "              [--breaker N]  trip to edge fallback after N straight failures\n"
      "  fleet       time-stepped fleet simulation over batched SoA kernels\n"
      "              --devices N --steps N --tu MBPS (trace mean) --seed N\n"
      "              [--step-s S] [--margin F] [--qps HZ] [--metric latency|energy]\n"
      "              [--csv FILE]   FleetStats is bit-identical at any --threads\n"
      "              [--cloud-machines N] finite cloud: admission control +\n"
      "                [--cloud-capacity MS_PER_S] [--cloud-policy greedy|energy]\n"
      "                [--admit-util F] [--sla MS] [--brownout START,DUR,DEPTH]\n"
      "  cloud       duel the placement policies on one finite pool under a\n"
      "              scripted regional brownout (greedy vs energy best-fit)\n"
      "              --devices N --steps N --machines N [--capacity MS_PER_S]\n"
      "              [--admit-util F] [--sla MS] [--brownout START,DUR,DEPTH]\n"
      "  help        this text\n\n"
      "global options:\n"
      "  --threads N   worker threads for parallel evaluation (default:\n"
      "                LENS_THREADS env, else all hardware threads);\n"
      "                results are bit-identical for any thread count\n"
      "  --tiers N     hierarchy depth: 2 = edge-cloud (default), 3 = the\n"
      "                edge-fog-cloud preset with two cut points\n"
      "  --fog-device  fog-node device preset for --tiers 3\n"
      "                (default datacenter-gpu)\n"
      "  --hop-bw A,B  per-hop throughputs in Mbps, radio first (one value\n"
      "                per hop; replaces --tu; default backhaul = 10x radio)\n");
  return 0;
}

int run_command(const Args& args) {
  try {
    // Worker budget for the lens::par pool: --threads beats LENS_THREADS
    // beats hardware detection. Results are identical for any setting.
    if (args.has("threads")) {
      const int threads = args.get_int("threads", 0);
      if (threads < 1) throw std::invalid_argument("--threads expects a positive integer");
      par::set_max_threads(static_cast<std::size_t>(threads));
    }
    const std::string& command = args.command();
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "search") return cmd_search(args);
    if (command == "thresholds") return cmd_thresholds(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "faults") return cmd_faults(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "cloud") return cmd_cloud(args);
    if (command.empty() || command == "help") return cmd_help();
    std::fprintf(stderr, "lens-cli: unknown command '%s' (try 'lens-cli help')\n",
                 command.c_str());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "lens-cli: %s\n", error.what());
    return 1;
  }
}

}  // namespace lens::cli
