#pragma once
// Pareto-dominance utilities (minimization convention throughout).
//
// These implement the paper's Pareto_init / Pareto_update primitives
// (Alg. 2 lines 6 and 14) plus the frontier-comparison metrics used in the
// evaluation section (domination fractions, combined-front composition).

#include <cstddef>
#include <vector>

namespace lens::opt {

/// True when `a` weakly dominates `b` and strictly improves at least one
/// objective (minimization): a_k <= b_k for all k, a_j < b_j for some j.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// A point on a Pareto front; `id` is caller-defined payload (e.g. the index
/// of the architecture in the search history).
struct ParetoPoint {
  std::size_t id = 0;
  std::vector<double> objectives;
};

/// Incrementally-maintained Pareto front (set of mutually non-dominated
/// points, minimization).
class ParetoFront {
 public:
  /// Insert a candidate. Returns true when the candidate enters the front
  /// (it is not dominated by any member); dominated members are evicted.
  bool insert(std::size_t id, std::vector<double> objectives);

  /// True when `objectives` would enter the front if inserted.
  bool would_accept(const std::vector<double>& objectives) const;

  /// True when some member of the front strictly dominates `objectives`.
  bool dominates_point(const std::vector<double>& objectives) const;

  const std::vector<ParetoPoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Build a front from a batch of (id, objectives) pairs.
  static ParetoFront from_points(const std::vector<ParetoPoint>& points);

 private:
  std::vector<ParetoPoint> points_;
};

/// Fraction of `victims`' members that are strictly dominated by at least
/// one member of `aggressors`. Returns 0 when `victims` is empty.
double fraction_dominated(const ParetoFront& victims, const ParetoFront& aggressors);

/// Composition of the Pareto front of the union of two fronts.
struct CombinedFrontStats {
  std::size_t total = 0;   ///< members of the combined front
  std::size_t from_a = 0;  ///< combined-front members contributed by `a`
  std::size_t from_b = 0;  ///< combined-front members contributed by `b`
  double fraction_a = 0.0; ///< from_a / total (0 when total == 0)
};

/// Merge two fronts and report who forms the union's Pareto front. Points
/// present in both (identical objective vectors) are credited to `a`.
CombinedFrontStats combined_front(const ParetoFront& a, const ParetoFront& b);

}  // namespace lens::opt
