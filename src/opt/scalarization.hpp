#pragma once
// Objective scalarization for multi-objective Thompson sampling.
//
// The MOBO acquisition draws one posterior sample per objective and reduces
// the sampled objective vector to a scalar with a random-weight augmented
// Chebyshev scalarization — the classic device whose minimizers sweep the
// whole (possibly non-convex) Pareto front as the weights vary.

#include <random>
#include <vector>

namespace lens::opt {

/// Running record of per-objective observed ranges, used to normalize
/// objectives of wildly different units (%, ms, mJ) before scalarizing.
class ObjectiveNormalizer {
 public:
  explicit ObjectiveNormalizer(std::size_t num_objectives);

  /// Fold one observed objective vector into the running min/max.
  void observe(const std::vector<double>& objectives);

  /// Map objectives into [0,1]^K using the observed ranges; degenerate
  /// (zero-width) ranges map to 0.5.
  std::vector<double> normalize(const std::vector<double>& objectives) const;

  std::size_t num_objectives() const { return lo_.size(); }
  const std::vector<double>& lower() const { return lo_; }
  const std::vector<double>& upper() const { return hi_; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  bool seen_any_ = false;
};

/// Augmented Chebyshev scalarization (minimization):
///   g(f) = max_k w_k f_k  +  rho * sum_k w_k f_k
/// `f` is expected pre-normalized to comparable scales.
double augmented_chebyshev(const std::vector<double>& f, const std::vector<double>& weights,
                           double rho = 0.05);

/// Draw uniform weights on the probability simplex (normalized exponentials).
std::vector<double> random_simplex_weights(std::size_t k, std::mt19937_64& rng);

}  // namespace lens::opt
