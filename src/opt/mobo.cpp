#include "opt/mobo.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::opt {

MoboEngine::MoboEngine(MoboConfig config, std::size_t num_objectives, Sampler sampler,
                       Objectives objectives)
    : config_(config),
      num_objectives_(num_objectives),
      sampler_(std::move(sampler)),
      objectives_(std::move(objectives)),
      rng_(config.seed),
      normalizer_(num_objectives) {
  if (num_objectives_ == 0) throw std::invalid_argument("MoboEngine: need >=1 objective");
  if (!sampler_ || !objectives_) throw std::invalid_argument("MoboEngine: null callbacks");
  if (config_.num_initial == 0) throw std::invalid_argument("MoboEngine: num_initial must be > 0");
  gps_.reserve(num_objectives_);
  for (std::size_t k = 0; k < num_objectives_; ++k) gps_.emplace_back(config_.gp);
}

void MoboEngine::record_observation(const std::vector<double>& x, std::vector<double> y) {
  if (y.size() != num_objectives_) {
    throw std::runtime_error("MoboEngine: objective callback returned wrong arity");
  }
  normalizer_.observe(y);
  front_.insert(history_.size(), y);
  seen_.insert(x);
  history_.push_back({x, std::move(y)});
  if (progress_) progress_(history_.size() - 1, history_.back());
}

void MoboEngine::evaluate_and_record(const std::vector<double>& x) {
  record_observation(x, objectives_(x));
}

void MoboEngine::evaluate_batch(const std::vector<std::vector<double>>& xs) {
  if (!batch_objectives_) {
    for (const std::vector<double>& x : xs) evaluate_and_record(x);
    return;
  }
  std::vector<std::vector<double>> ys = batch_objectives_(xs);
  if (ys.size() != xs.size()) {
    throw std::runtime_error("MoboEngine: batch objective callback returned wrong count");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    record_observation(xs[i], std::move(ys[i]));
  }
}

void MoboEngine::refit_models(bool tune_hyperparameters) {
  std::vector<std::vector<double>> xs;
  xs.reserve(history_.size());
  for (const Observation& o : history_) xs.push_back(o.x);
  for (std::size_t k = 0; k < num_objectives_; ++k) {
    std::vector<double> ys;
    ys.reserve(history_.size());
    for (const Observation& o : history_) ys.push_back(o.objectives[k]);
    GpConfig gp_config = config_.gp;
    if (!tune_hyperparameters && models_ready_) {
      // Reuse previously selected hyper-parameters; refactorize only.
      gp_config.tune_hyperparameters = false;
      gp_config.signal_variance = gps_[k].signal_variance();
      gp_config.length_scale = gps_[k].length_scale();
      gp_config.noise_variance = gps_[k].noise_variance();
    }
    gps_[k] = GaussianProcess(gp_config);
    gps_[k].fit(xs, ys);
  }
  models_ready_ = true;
}

void MoboEngine::extend_models(const Observation& observation) {
  for (std::size_t k = 0; k < num_objectives_; ++k) {
    gps_[k].observe(observation.x, observation.objectives[k]);
  }
}

std::vector<double> MoboEngine::propose_next() {
  // Draw the acquisition pool, skipping exact re-evaluations where possible
  // (hashed membership over the encoded history: O(1) per draw).
  std::vector<std::vector<double>> pool;
  pool.reserve(config_.pool_size);
  for (std::size_t attempts = 0; pool.size() < config_.pool_size &&
                                 attempts < config_.pool_size * 4;
       ++attempts) {
    std::vector<double> x = sampler_(rng_);
    if (seen_.count(x) == 0) pool.push_back(std::move(x));
  }
  if (pool.empty()) pool.push_back(sampler_(rng_));  // space exhausted: allow repeats
  const std::size_t chosen =
      select_candidate(gps_, pool, normalizer_, config_.acquisition, rng_);
  return pool[chosen];
}

void MoboEngine::seed_observations(const std::vector<Observation>& observations) {
  if (evaluations_done_ > 0) {
    throw std::logic_error("MoboEngine::seed_observations: search already started");
  }
  for (const Observation& o : observations) {
    if (o.objectives.size() != num_objectives_) {
      throw std::invalid_argument("MoboEngine::seed_observations: wrong objective arity");
    }
    normalizer_.observe(o.objectives);
    front_.insert(history_.size(), o.objectives);
    seen_.insert(o.x);
    history_.push_back(o);
    if (evaluations_done_ < config_.num_initial) ++evaluations_done_;
  }
}

void MoboEngine::step(std::size_t n) {
  while (n > 0) {
    if (evaluations_done_ < config_.num_initial) {
      // Warm-up: the sampler only touches the engine RNG and the objectives
      // never do, so drawing the whole batch up front consumes the generator
      // in exactly the serial order — then the batch callback may evaluate
      // the points in parallel.
      const std::size_t batch = std::min(n, config_.num_initial - evaluations_done_);
      std::vector<std::vector<double>> xs;
      xs.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) xs.push_back(sampler_(rng_));
      evaluate_batch(xs);
      evaluations_done_ += batch;
      n -= batch;
    } else {
      // Posterior maintenance ahead of the proposal: a full tuned refit
      // every refit_period iterations (O(n^3), hyper-parameter grid); in
      // between, the models already carry the latest observation via the
      // O(n^2) incremental extension below — or, on the reference path,
      // get rebuilt with frozen hyper-parameters. Both routes produce
      // bit-identical posteriors (see DESIGN.md "Posterior maintenance").
      const bool tune = !models_ready_ || iterations_since_refit_ >= config_.refit_period;
      if (tune || !config_.incremental_posterior) refit_models(tune);
      iterations_since_refit_ = tune ? 0 : iterations_since_refit_ + 1;
      evaluate_and_record(propose_next());
      if (config_.incremental_posterior) extend_models(history_.back());
      ++evaluations_done_;
      --n;
    }
  }
}

void MoboEngine::run() { step(config_.num_initial + config_.num_iterations - evaluations_done_); }

}  // namespace lens::opt
