#include "opt/mobo.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "io/io.hpp"

namespace lens::opt {

namespace {
constexpr const char* kSnapshotMagic = "mobo-snapshot v1";
}

std::string MoboSnapshot::serialize() const {
  std::ostringstream out;
  out << kSnapshotMagic << '\n';
  out << "objectives " << num_objectives << '\n';
  out << "config " << num_initial << ' ' << num_iterations << ' ' << pool_size << ' '
      << seed << ' ' << refit_period << ' ' << (incremental_posterior ? 1 : 0) << '\n';
  out << "state " << evaluations_done << ' ' << iterations_since_refit << ' '
      << (models_ready ? 1 : 0) << '\n';
  out << "rng " << rng_state << '\n';
  out << "gps " << gps.size() << '\n';
  for (const GpHyperparameters& hp : gps) {
    out << "g " << io::encode_double(hp.signal_variance) << ' '
        << io::encode_double(hp.length_scale) << ' '
        << io::encode_double(hp.noise_variance) << '\n';
  }
  const std::size_t dim = history.empty() ? 0 : history.front().x.size();
  out << "dim " << dim << '\n';
  out << "history " << history.size() << '\n';
  for (const Observation& o : history) {
    out << 'o';
    for (double v : o.x) out << ' ' << io::encode_double(v);
    for (double v : o.objectives) out << ' ' << io::encode_double(v);
    out << '\n';
  }
  return std::move(out).str();
}

MoboSnapshot MoboSnapshot::deserialize(const std::string& payload) {
  std::istringstream in(payload);
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("MoboSnapshot: " + what);
  };
  std::string line;
  if (!std::getline(in, line) || line != kSnapshotMagic) fail("bad magic line");

  MoboSnapshot snapshot;
  std::string keyword;
  if (!(in >> keyword >> snapshot.num_objectives) || keyword != "objectives") {
    fail("missing objectives line");
  }
  int incremental = 0;
  if (!(in >> keyword >> snapshot.num_initial >> snapshot.num_iterations >>
        snapshot.pool_size >> snapshot.seed >> snapshot.refit_period >> incremental) ||
      keyword != "config") {
    fail("missing config line");
  }
  snapshot.incremental_posterior = incremental != 0;
  int models_ready = 0;
  if (!(in >> keyword >> snapshot.evaluations_done >> snapshot.iterations_since_refit >>
        models_ready) ||
      keyword != "state") {
    fail("missing state line");
  }
  snapshot.models_ready = models_ready != 0;
  if (!(in >> keyword) || keyword != "rng" || !std::getline(in, line) || line.size() < 2) {
    fail("missing rng line");
  }
  snapshot.rng_state = line.substr(1);  // drop the separating space
  std::size_t gp_count = 0;
  if (!(in >> keyword >> gp_count) || keyword != "gps") fail("missing gps line");
  std::string hex_signal, hex_length, hex_noise;
  for (std::size_t k = 0; k < gp_count; ++k) {
    if (!(in >> keyword >> hex_signal >> hex_length >> hex_noise) || keyword != "g") {
      fail("truncated gp hyper-parameters");
    }
    snapshot.gps.push_back({io::decode_double(hex_signal), io::decode_double(hex_length),
                            io::decode_double(hex_noise)});
  }
  std::size_t dim = 0;
  if (!(in >> keyword >> dim) || keyword != "dim") fail("missing dim line");
  std::size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "history") fail("missing history line");
  std::string hex;
  for (std::size_t i = 0; i < count; ++i) {
    if (!(in >> keyword) || keyword != "o") fail("truncated history");
    Observation o;
    o.x.reserve(dim);
    o.objectives.reserve(snapshot.num_objectives);
    for (std::size_t d = 0; d < dim; ++d) {
      if (!(in >> hex)) fail("truncated history record");
      o.x.push_back(io::decode_double(hex));
    }
    for (std::size_t k = 0; k < snapshot.num_objectives; ++k) {
      if (!(in >> hex)) fail("truncated history record");
      o.objectives.push_back(io::decode_double(hex));
    }
    snapshot.history.push_back(std::move(o));
  }
  if (in >> keyword) fail("trailing garbage after history");
  if (snapshot.evaluations_done > snapshot.history.size()) {
    fail("evaluation counter exceeds history size");
  }
  if (snapshot.models_ready &&
      (snapshot.history.empty() || snapshot.gps.size() != snapshot.num_objectives)) {
    fail("models marked ready without matching data");
  }
  return snapshot;
}

MoboEngine::MoboEngine(MoboConfig config, std::size_t num_objectives, Sampler sampler,
                       Objectives objectives)
    : config_(config),
      num_objectives_(num_objectives),
      sampler_(std::move(sampler)),
      objectives_(std::move(objectives)),
      rng_(config.seed),
      normalizer_(num_objectives) {
  if (num_objectives_ == 0) throw std::invalid_argument("MoboEngine: need >=1 objective");
  if (!sampler_ || !objectives_) throw std::invalid_argument("MoboEngine: null callbacks");
  if (config_.num_initial == 0) throw std::invalid_argument("MoboEngine: num_initial must be > 0");
  gps_.reserve(num_objectives_);
  for (std::size_t k = 0; k < num_objectives_; ++k) gps_.emplace_back(config_.gp);
}

void MoboEngine::record_observation(const std::vector<double>& x, std::vector<double> y) {
  if (y.size() != num_objectives_) {
    throw std::runtime_error("MoboEngine: objective callback returned wrong arity");
  }
  normalizer_.observe(y);
  front_.insert(history_.size(), y);
  seen_.insert(x);
  history_.push_back({x, std::move(y)});
  if (progress_) progress_(history_.size() - 1, history_.back());
}

void MoboEngine::evaluate_and_record(const std::vector<double>& x) {
  record_observation(x, objectives_(x));
}

void MoboEngine::evaluate_batch(const std::vector<std::vector<double>>& xs) {
  if (!batch_objectives_) {
    for (const std::vector<double>& x : xs) evaluate_and_record(x);
    return;
  }
  std::vector<std::vector<double>> ys = batch_objectives_(xs);
  if (ys.size() != xs.size()) {
    throw std::runtime_error("MoboEngine: batch objective callback returned wrong count");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    record_observation(xs[i], std::move(ys[i]));
  }
}

void MoboEngine::refit_models(bool tune_hyperparameters) {
  std::vector<std::vector<double>> xs;
  xs.reserve(history_.size());
  for (const Observation& o : history_) xs.push_back(o.x);
  for (std::size_t k = 0; k < num_objectives_; ++k) {
    std::vector<double> ys;
    ys.reserve(history_.size());
    for (const Observation& o : history_) ys.push_back(o.objectives[k]);
    if (!tune_hyperparameters && models_ready_) {
      // Reuse previously selected hyper-parameters; refactorize only. Same
      // code path a checkpoint restore takes, so both are bit-identical to
      // the incremental observe() chain.
      gps_[k] = GaussianProcess::from_snapshot(config_.gp, gps_[k].hyperparameters(), xs,
                                               std::move(ys));
    } else {
      gps_[k] = GaussianProcess(config_.gp);
      gps_[k].fit(xs, ys);
    }
  }
  models_ready_ = true;
}

void MoboEngine::extend_models(const Observation& observation) {
  for (std::size_t k = 0; k < num_objectives_; ++k) {
    gps_[k].observe(observation.x, observation.objectives[k]);
  }
}

std::vector<double> MoboEngine::propose_next() {
  // Draw the acquisition pool, skipping exact re-evaluations where possible
  // (hashed membership over the encoded history: O(1) per draw).
  std::vector<std::vector<double>> pool;
  pool.reserve(config_.pool_size);
  for (std::size_t attempts = 0; pool.size() < config_.pool_size &&
                                 attempts < config_.pool_size * 4;
       ++attempts) {
    std::vector<double> x = sampler_(rng_);
    if (seen_.count(x) == 0) pool.push_back(std::move(x));
  }
  if (pool.empty()) pool.push_back(sampler_(rng_));  // space exhausted: allow repeats
  const std::size_t chosen =
      select_candidate(gps_, pool, normalizer_, config_.acquisition, rng_);
  return pool[chosen];
}

void MoboEngine::seed_observations(const std::vector<Observation>& observations) {
  if (evaluations_done_ > 0) {
    throw std::logic_error("MoboEngine::seed_observations: search already started");
  }
  for (const Observation& o : observations) {
    if (o.objectives.size() != num_objectives_) {
      throw std::invalid_argument("MoboEngine::seed_observations: wrong objective arity");
    }
    normalizer_.observe(o.objectives);
    front_.insert(history_.size(), o.objectives);
    seen_.insert(o.x);
    history_.push_back(o);
    if (evaluations_done_ < config_.num_initial) ++evaluations_done_;
  }
}

MoboSnapshot MoboEngine::snapshot() const {
  MoboSnapshot snapshot;
  snapshot.num_objectives = num_objectives_;
  snapshot.num_initial = config_.num_initial;
  snapshot.num_iterations = config_.num_iterations;
  snapshot.pool_size = config_.pool_size;
  snapshot.seed = config_.seed;
  snapshot.refit_period = config_.refit_period;
  snapshot.incremental_posterior = config_.incremental_posterior;
  snapshot.evaluations_done = evaluations_done_;
  snapshot.iterations_since_refit = iterations_since_refit_;
  snapshot.models_ready = models_ready_;
  std::ostringstream rng_stream;
  rng_stream << rng_;
  snapshot.rng_state = std::move(rng_stream).str();
  if (models_ready_) {
    snapshot.gps.reserve(num_objectives_);
    for (const GaussianProcess& gp : gps_) snapshot.gps.push_back(gp.hyperparameters());
  }
  snapshot.history = history_;
  return snapshot;
}

void MoboEngine::restore(const MoboSnapshot& snapshot) {
  if (evaluations_done_ > 0 || !history_.empty()) {
    throw std::logic_error("MoboEngine::restore: search already started");
  }
  if (snapshot.num_objectives != num_objectives_) {
    throw std::invalid_argument("MoboEngine::restore: objective count mismatch");
  }
  if (snapshot.num_initial != config_.num_initial ||
      snapshot.pool_size != config_.pool_size || snapshot.seed != config_.seed ||
      snapshot.refit_period != config_.refit_period ||
      snapshot.incremental_posterior != config_.incremental_posterior) {
    throw std::invalid_argument(
        "MoboEngine::restore: snapshot was taken under a different search "
        "configuration (warm-up/pool/seed/refit/posterior-mode must match)");
  }
  if (snapshot.evaluations_done > snapshot.history.size()) {
    throw std::invalid_argument("MoboEngine::restore: counter exceeds history");
  }
  if (snapshot.models_ready &&
      (snapshot.history.empty() || snapshot.gps.size() != num_objectives_)) {
    throw std::invalid_argument("MoboEngine::restore: inconsistent model state");
  }
  const std::size_t dim = snapshot.history.empty() ? 0 : snapshot.history.front().x.size();
  for (const Observation& o : snapshot.history) {
    if (o.objectives.size() != num_objectives_ || o.x.size() != dim || o.x.empty()) {
      throw std::invalid_argument("MoboEngine::restore: malformed observation");
    }
  }

  // RNG stream state: the textual round trip is exact per the standard.
  {
    std::istringstream rng_stream(snapshot.rng_state);
    rng_stream >> rng_;
    if (!rng_stream) {
      throw std::invalid_argument("MoboEngine::restore: malformed RNG state");
    }
  }

  // Replay the observations through the same recording path record_observation
  // uses, rebuilding the normalizer, Pareto front and duplicate index with the
  // identical floats the uninterrupted run held.
  for (const Observation& o : snapshot.history) {
    normalizer_.observe(o.objectives);
    front_.insert(history_.size(), o.objectives);
    seen_.insert(o.x);
    history_.push_back(o);
  }
  evaluations_done_ = snapshot.evaluations_done;
  iterations_since_refit_ = snapshot.iterations_since_refit;
  models_ready_ = snapshot.models_ready;

  if (snapshot.models_ready) {
    // Frozen-hyper refit over the restored history: bit-identical to the
    // incremental posterior chain the snapshot interrupted.
    std::vector<std::vector<double>> xs;
    xs.reserve(history_.size());
    for (const Observation& o : history_) xs.push_back(o.x);
    for (std::size_t k = 0; k < num_objectives_; ++k) {
      std::vector<double> ys;
      ys.reserve(history_.size());
      for (const Observation& o : history_) ys.push_back(o.objectives[k]);
      gps_[k] = GaussianProcess::from_snapshot(config_.gp, snapshot.gps[k], xs,
                                               std::move(ys));
    }
  }
}

void MoboEngine::step(std::size_t n) {
  while (n > 0) {
    if (evaluations_done_ < config_.num_initial) {
      // Warm-up: the sampler only touches the engine RNG and the objectives
      // never do, so drawing the whole batch up front consumes the generator
      // in exactly the serial order — then the batch callback may evaluate
      // the points in parallel.
      const std::size_t batch = std::min(n, config_.num_initial - evaluations_done_);
      std::vector<std::vector<double>> xs;
      xs.reserve(batch);
      for (std::size_t i = 0; i < batch; ++i) xs.push_back(sampler_(rng_));
      evaluate_batch(xs);
      evaluations_done_ += batch;
      n -= batch;
    } else {
      // Posterior maintenance ahead of the proposal: a full tuned refit
      // every refit_period iterations (O(n^3), hyper-parameter grid); in
      // between, the models already carry the latest observation via the
      // O(n^2) incremental extension below — or, on the reference path,
      // get rebuilt with frozen hyper-parameters. Both routes produce
      // bit-identical posteriors (see DESIGN.md "Posterior maintenance").
      const bool tune = !models_ready_ || iterations_since_refit_ >= config_.refit_period;
      if (tune || !config_.incremental_posterior) refit_models(tune);
      iterations_since_refit_ = tune ? 0 : iterations_since_refit_ + 1;
      evaluate_and_record(propose_next());
      if (config_.incremental_posterior) extend_models(history_.back());
      ++evaluations_done_;
      --n;
    }
  }
}

void MoboEngine::run() { step(config_.num_initial + config_.num_iterations - evaluations_done_); }

}  // namespace lens::opt
