#include "opt/acquisition.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "par/parallel.hpp"

namespace lens::opt {

std::size_t select_candidate(const std::vector<GaussianProcess>& gps,
                             const std::vector<std::vector<double>>& pool,
                             const ObjectiveNormalizer& normalizer,
                             const AcquisitionConfig& config, std::mt19937_64& rng) {
  if (pool.empty()) throw std::invalid_argument("select_candidate: empty pool");
  if (gps.empty()) throw std::invalid_argument("select_candidate: no objectives");
  const std::size_t num_objectives = gps.size();
  const std::size_t pool_size = pool.size();

  // One objective-value estimate per (objective, candidate). Per-candidate
  // predictions are pure and write distinct slots, so all objectives are
  // scored in one num_objectives * pool_size-wide parallel section; the
  // Thompson path consumes `rng` serially up front inside
  // sample_objectives_at, keeping results identical for any thread count
  // (and bit-identical to the per-objective sample_at loop it batches).
  std::vector<std::vector<double>> sampled;
  if (config.kind == AcquisitionKind::kThompsonScalarized) {
    sampled = sample_objectives_at(gps, pool, rng);
  } else {
    sampled.assign(num_objectives, std::vector<double>(pool_size));
    par::parallel_for(num_objectives * pool_size, [&](std::size_t idx) {
      const std::size_t k = idx / pool_size;
      const std::size_t i = idx % pool_size;
      const auto p = gps[k].predict(pool[i]);
      sampled[k][i] = config.kind == AcquisitionKind::kMeanScalarized
                          ? p.mean
                          : p.mean - config.lcb_beta * std::sqrt(p.variance);
    });
  }

  const std::vector<double> weights = random_simplex_weights(num_objectives, rng);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  std::vector<double> objective_vector(num_objectives);
  for (std::size_t i = 0; i < pool_size; ++i) {
    for (std::size_t k = 0; k < num_objectives; ++k) objective_vector[k] = sampled[k][i];
    const double g = augmented_chebyshev(normalizer.normalize(objective_vector), weights,
                                         config.chebyshev_rho);
    if (g < best) {
      best = g;
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace lens::opt
