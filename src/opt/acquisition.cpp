#include "opt/acquisition.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "par/parallel.hpp"

namespace lens::opt {

std::size_t select_candidate(const std::vector<GaussianProcess>& gps,
                             const std::vector<std::vector<double>>& pool,
                             const ObjectiveNormalizer& normalizer,
                             const AcquisitionConfig& config, std::mt19937_64& rng) {
  if (pool.empty()) throw std::invalid_argument("select_candidate: empty pool");
  if (gps.empty()) throw std::invalid_argument("select_candidate: no objectives");
  const std::size_t num_objectives = gps.size();
  const std::size_t pool_size = pool.size();

  // One objective-value estimate per (objective, candidate). Per-candidate
  // predictions are pure and write distinct slots, so the pool is scored in
  // parallel; the Thompson path consumes `rng` serially up front inside
  // sample_at, keeping results identical for any thread count.
  std::vector<std::vector<double>> sampled(num_objectives);
  for (std::size_t k = 0; k < num_objectives; ++k) {
    switch (config.kind) {
      case AcquisitionKind::kThompsonScalarized:
        sampled[k] = gps[k].sample_at(pool, rng);
        break;
      case AcquisitionKind::kMeanScalarized: {
        sampled[k].resize(pool_size);
        par::parallel_for(pool_size,
                          [&](std::size_t i) { sampled[k][i] = gps[k].predict(pool[i]).mean; });
        break;
      }
      case AcquisitionKind::kLowerConfidenceBound: {
        sampled[k].resize(pool_size);
        par::parallel_for(pool_size, [&](std::size_t i) {
          const auto p = gps[k].predict(pool[i]);
          sampled[k][i] = p.mean - config.lcb_beta * std::sqrt(p.variance);
        });
        break;
      }
    }
  }

  const std::vector<double> weights = random_simplex_weights(num_objectives, rng);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  std::vector<double> objective_vector(num_objectives);
  for (std::size_t i = 0; i < pool_size; ++i) {
    for (std::size_t k = 0; k < num_objectives; ++k) objective_vector[k] = sampled[k][i];
    const double g = augmented_chebyshev(normalizer.normalize(objective_vector), weights,
                                         config.chebyshev_rho);
    if (g < best) {
      best = g;
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace lens::opt
