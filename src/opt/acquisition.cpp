#include "opt/acquisition.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lens::opt {

std::size_t select_candidate(const std::vector<GaussianProcess>& gps,
                             const std::vector<std::vector<double>>& pool,
                             const ObjectiveNormalizer& normalizer,
                             const AcquisitionConfig& config, std::mt19937_64& rng) {
  if (pool.empty()) throw std::invalid_argument("select_candidate: empty pool");
  if (gps.empty()) throw std::invalid_argument("select_candidate: no objectives");
  const std::size_t num_objectives = gps.size();
  const std::size_t pool_size = pool.size();

  // One objective-value estimate per (objective, candidate).
  std::vector<std::vector<double>> sampled(num_objectives);
  for (std::size_t k = 0; k < num_objectives; ++k) {
    switch (config.kind) {
      case AcquisitionKind::kThompsonScalarized:
        sampled[k] = gps[k].sample_at(pool, rng);
        break;
      case AcquisitionKind::kMeanScalarized: {
        sampled[k].resize(pool_size);
        for (std::size_t i = 0; i < pool_size; ++i) sampled[k][i] = gps[k].predict(pool[i]).mean;
        break;
      }
      case AcquisitionKind::kLowerConfidenceBound: {
        sampled[k].resize(pool_size);
        for (std::size_t i = 0; i < pool_size; ++i) {
          const auto p = gps[k].predict(pool[i]);
          sampled[k][i] = p.mean - config.lcb_beta * std::sqrt(p.variance);
        }
        break;
      }
    }
  }

  const std::vector<double> weights = random_simplex_weights(num_objectives, rng);
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  std::vector<double> objective_vector(num_objectives);
  for (std::size_t i = 0; i < pool_size; ++i) {
    for (std::size_t k = 0; k < num_objectives; ++k) objective_vector[k] = sampled[k][i];
    const double g = augmented_chebyshev(normalizer.normalize(objective_vector), weights,
                                         config.chebyshev_rho);
    if (g < best) {
      best = g;
      best_index = i;
    }
  }
  return best_index;
}

}  // namespace lens::opt
