#pragma once
// Exact hypervolume indicator (minimization) by objective slicing (HSO).
//
// The hypervolume of a front w.r.t. a reference point is the Lebesgue
// measure of the region dominated by the front and bounded by the reference.
// Used as a search-quality metric when comparing LENS against baselines.

#include <vector>

namespace lens::opt {

/// Hypervolume of `points` (minimization) against `reference`. Points not
/// strictly better than the reference in every objective contribute nothing.
/// Exact for any dimension via recursive slicing; intended for the small
/// fronts (tens of points) NAS produces. Throws on dimension mismatch.
double hypervolume(const std::vector<std::vector<double>>& points,
                   const std::vector<double>& reference);

}  // namespace lens::opt
