#include "opt/matrix.hpp"

#include <cmath>

namespace lens::opt {

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != cols) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return (*this)(r, c);
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix::multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(const std::vector<double>& v) const {
  if (cols_ != v.size()) throw std::invalid_argument("Matrix::multiply(vec): shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::add(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::add: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

void Matrix::add_diagonal(double value) {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

std::vector<double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
  std::vector<double> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

CholeskyFactor CholeskyFactor::factorize(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("CholeskyFactor::factorize: matrix not square");
  }
  CholeskyFactor f;
  f.data_.reserve(a.rows() * (a.rows() + 1) / 2);
  std::vector<double> row;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    row.resize(i);
    for (std::size_t j = 0; j < i; ++j) row[j] = a(i, j);
    f.extend(row, a(i, i));
  }
  return f;
}

void CholeskyFactor::extend(const std::vector<double>& cross_row, double diag) {
  if (cross_row.size() != n_) {
    throw std::invalid_argument("CholeskyFactor::extend: cross_row size mismatch");
  }
  // Forward substitution against the existing factor yields the new
  // off-diagonal row; it performs the identical multiply/subtract/divide
  // sequence the full column-wise algorithm would for row n_.
  std::vector<double> row = solve_lower(cross_row);
  double pivot = diag;
  for (std::size_t k = 0; k < n_; ++k) pivot -= row[k] * row[k];
  if (pivot <= 0.0 || !std::isfinite(pivot)) {
    throw std::domain_error("cholesky: matrix not positive definite");
  }
  data_.insert(data_.end(), row.begin(), row.end());
  data_.push_back(std::sqrt(pivot));
  ++n_;
}

double CholeskyFactor::at(std::size_t i, std::size_t j) const {
  if (i >= n_ || j >= n_) throw std::out_of_range("CholeskyFactor::at: index out of range");
  return j <= i ? el(i, j) : 0.0;
}

std::vector<double> CholeskyFactor::solve_lower(const std::vector<double>& b) const {
  if (b.size() != n_) throw std::invalid_argument("CholeskyFactor::solve_lower: size mismatch");
  std::vector<double> x(n_);
  std::size_t i = 0;
  // 4-row panels. The partial sums of rows i..i+3 over the settled prefix
  // x[0..i) are four independent accumulator chains — each still subtracts
  // in ascending j with `acc -= L(i,j) * x[j]` exactly as the reference
  // loop, so every chain is bit-identical to its scalar counterpart while
  // the compiler vectorizes across the four rows. The trailing 4x4
  // triangle then resolves serially, continuing each row's subtraction
  // sequence in ascending j before the final divide.
  for (; i + 4 <= n_; i += 4) {
    const double* r0 = &data_[i * (i + 1) / 2];
    const double* r1 = &data_[(i + 1) * (i + 2) / 2];
    const double* r2 = &data_[(i + 2) * (i + 3) / 2];
    const double* r3 = &data_[(i + 3) * (i + 4) / 2];
    double a0 = b[i];
    double a1 = b[i + 1];
    double a2 = b[i + 2];
    double a3 = b[i + 3];
    for (std::size_t j = 0; j < i; ++j) {
      const double xj = x[j];
      a0 -= r0[j] * xj;
      a1 -= r1[j] * xj;
      a2 -= r2[j] * xj;
      a3 -= r3[j] * xj;
    }
    x[i] = a0 / r0[i];
    a1 -= r1[i] * x[i];
    x[i + 1] = a1 / r1[i + 1];
    a2 -= r2[i] * x[i];
    a2 -= r2[i + 1] * x[i + 1];
    x[i + 2] = a2 / r2[i + 2];
    a3 -= r3[i] * x[i];
    a3 -= r3[i + 1] * x[i + 1];
    a3 -= r3[i + 2] * x[i + 2];
    x[i + 3] = a3 / r3[i + 3];
  }
  for (; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= el(i, j) * x[j];
    x[i] = acc / el(i, i);
  }
  return x;
}

std::vector<double> CholeskyFactor::solve_lower_reference(const std::vector<double>& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("CholeskyFactor::solve_lower_reference: size mismatch");
  }
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= el(i, j) * x[j];
    x[i] = acc / el(i, i);
  }
  return x;
}

std::vector<double> CholeskyFactor::solve_lower_transpose(const std::vector<double>& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument("CholeskyFactor::solve_lower_transpose: size mismatch");
  }
  std::vector<double> x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= el(j, ii) * x[j];
    x[ii] = acc / el(ii, ii);
  }
  return x;
}

std::vector<double> CholeskyFactor::solve(const std::vector<double>& b) const {
  return solve_lower_transpose(solve_lower(b));
}

double CholeskyFactor::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < n_; ++i) acc += std::log(el(i, i));
  return 2.0 * acc;
}

Matrix CholeskyFactor::dense() const {
  Matrix out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out(i, j) = el(i, j);
  }
  return out;
}

Matrix cholesky(const Matrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("cholesky: matrix not square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw std::domain_error("cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b) {
  if (l.rows() != l.cols() || l.rows() != b.size()) {
    throw std::invalid_argument("solve_lower: shape mismatch");
  }
  const std::size_t n = b.size();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * x[j];
    x[i] = acc / l(i, i);
  }
  return x;
}

std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& b) {
  if (l.rows() != l.cols() || l.rows() != b.size()) {
    throw std::invalid_argument("solve_lower_transpose: shape mismatch");
  }
  const std::size_t n = b.size();
  std::vector<double> x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * x[j];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b) {
  return solve_lower_transpose(l, solve_lower(l, b));
}

double log_det_from_cholesky(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) acc += std::log(l(i, i));
  return 2.0 * acc;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace lens::opt
