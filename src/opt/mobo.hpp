#pragma once
// Multi-objective Bayesian-optimization engine (paper Algorithm 2).
//
// The engine is domain-agnostic: it optimizes K black-box objectives over
// points produced by a caller-supplied random sampler (here: normalized
// architecture genotypes). LENS and the Traditional baseline differ only in
// the objective callback they wire in.

#include <functional>
#include <random>
#include <vector>

#include "opt/acquisition.hpp"
#include "opt/gp.hpp"
#include "opt/pareto.hpp"
#include "opt/scalarization.hpp"

namespace lens::opt {

/// One evaluated design point.
struct Observation {
  std::vector<double> x;           ///< encoded design point
  std::vector<double> objectives;  ///< K objective values (minimization)
};

struct MoboConfig {
  std::size_t num_initial = 20;    ///< C_init: random warm-up evaluations
  std::size_t num_iterations = 300;///< N_iter: BO iterations after warm-up
  std::size_t pool_size = 256;     ///< candidates scored per acquisition step
  unsigned seed = 1;
  GpConfig gp;
  AcquisitionConfig acquisition;
  /// Refit GP hyper-parameters every `refit_period` iterations (refitting is
  /// the O(n^3) part; intermediate iterations reuse hyper-parameters but
  /// still refactorize with the new data).
  std::size_t refit_period = 10;
};

/// MOBO engine: Algorithm 2 of the paper.
class MoboEngine {
 public:
  /// Draw one random encoded design point.
  using Sampler = std::function<std::vector<double>(std::mt19937_64&)>;
  /// Evaluate the K objectives at an encoded design point.
  using Objectives = std::function<std::vector<double>(const std::vector<double>&)>;
  /// Evaluate a batch of design points at once, returning one objective
  /// vector per input in input order. Lets the caller fan the warm-up
  /// evaluations out over a thread pool (see core::NasDriver).
  using BatchObjectives = std::function<std::vector<std::vector<double>>(
      const std::vector<std::vector<double>>&)>;
  /// Optional progress hook: (0-based evaluation index, observation).
  using ProgressHook = std::function<void(std::size_t, const Observation&)>;

  MoboEngine(MoboConfig config, std::size_t num_objectives, Sampler sampler,
             Objectives objectives);

  /// Run warm-up plus all BO iterations. May be called once per engine.
  void run();

  /// Run only `n` additional evaluations (warm-up first if pending); useful
  /// for tests and incremental experiments.
  void step(std::size_t n);

  /// Warm-start with previously evaluated points (e.g. a search at another
  /// throughput setting). Seeded observations count toward the warm-up
  /// budget but cost no objective evaluations. Must be called before any
  /// step()/run(). Throws std::logic_error otherwise, std::invalid_argument
  /// on arity mismatches.
  void seed_observations(const std::vector<Observation>& observations);

  const std::vector<Observation>& history() const { return history_; }
  const ParetoFront& front() const { return front_; }
  std::size_t num_objectives() const { return num_objectives_; }
  void set_progress_hook(ProgressHook hook) { progress_ = std::move(hook); }

  /// Install a batch evaluator used for the random warm-up phase (BO
  /// iterations are inherently sequential). Warm-up design points are still
  /// drawn serially from the engine RNG, so history is bit-identical to the
  /// point-at-a-time path as long as the batch callback returns the same
  /// values the scalar callback would.
  void set_batch_objectives(BatchObjectives batch) { batch_objectives_ = std::move(batch); }

 private:
  void evaluate_and_record(const std::vector<double>& x);
  /// Evaluate a batch (via batch_objectives_ when installed, else one by
  /// one) and record results in input order.
  void evaluate_batch(const std::vector<std::vector<double>>& xs);
  void refit_models(bool tune_hyperparameters);
  std::vector<double> propose_next();

  MoboConfig config_;
  std::size_t num_objectives_;
  Sampler sampler_;
  Objectives objectives_;
  BatchObjectives batch_objectives_;
  ProgressHook progress_;

  std::mt19937_64 rng_;
  std::vector<Observation> history_;
  ParetoFront front_;
  ObjectiveNormalizer normalizer_;
  std::vector<GaussianProcess> gps_;
  std::size_t evaluations_done_ = 0;
  std::size_t iterations_since_refit_ = 0;
  bool models_ready_ = false;
};

}  // namespace lens::opt
