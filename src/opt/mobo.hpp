#pragma once
// Multi-objective Bayesian-optimization engine (paper Algorithm 2).
//
// The engine is domain-agnostic: it optimizes K black-box objectives over
// points produced by a caller-supplied random sampler (here: normalized
// architecture genotypes). LENS and the Traditional baseline differ only in
// the objective callback they wire in.

#include <cstdint>
#include <cstring>
#include <functional>
#include <random>
#include <unordered_set>
#include <vector>

#include "opt/acquisition.hpp"
#include "opt/gp.hpp"
#include "opt/pareto.hpp"
#include "opt/scalarization.hpp"

namespace lens::opt {

/// One evaluated design point.
struct Observation {
  std::vector<double> x;           ///< encoded design point
  std::vector<double> objectives;  ///< K objective values (minimization)
};

/// Full engine state between evaluations — everything needed to continue a
/// search in a fresh process bit-identically to the uninterrupted run:
/// observations, the serialized std::mt19937_64 stream, the warm-up /
/// refit counters, and the tuned GP hyper-parameters (the posteriors
/// themselves are rebuilt by a frozen-hyper refit, which is bit-identical
/// to the incremental chain). The config echo lets restore() reject a
/// snapshot taken under a different search configuration.
struct MoboSnapshot {
  std::size_t num_objectives = 0;
  // -- config echo (validated on restore) --
  std::size_t num_initial = 0;
  std::size_t num_iterations = 0;  ///< informational; the budget may be extended
  std::size_t pool_size = 0;
  unsigned seed = 0;
  std::size_t refit_period = 0;
  bool incremental_posterior = true;
  // -- mutable engine state --
  std::size_t evaluations_done = 0;
  std::size_t iterations_since_refit = 0;
  bool models_ready = false;
  std::string rng_state;  ///< operator<< serialization of std::mt19937_64
  std::vector<GpHyperparameters> gps;  ///< one per objective when models_ready
  std::vector<Observation> history;

  /// Text payload with every double hex-encoded (bit-exact round trip).
  std::string serialize() const;
  /// Parses a serialize() payload; throws std::invalid_argument on any
  /// structural defect (bad keyword, count mismatch, trailing garbage).
  static MoboSnapshot deserialize(const std::string& payload);
};

struct MoboConfig {
  std::size_t num_initial = 20;    ///< C_init: random warm-up evaluations
  std::size_t num_iterations = 300;///< N_iter: BO iterations after warm-up
  std::size_t pool_size = 256;     ///< candidates scored per acquisition step
  unsigned seed = 1;
  GpConfig gp;
  AcquisitionConfig acquisition;
  /// Refit GP hyper-parameters every `refit_period` iterations (the tuned
  /// refit is the O(n^3) part; intermediate iterations extend the cached
  /// posterior incrementally in O(n^2)).
  std::size_t refit_period = 10;
  /// When true (default), intermediate iterations maintain the GP posteriors
  /// via GaussianProcess::observe() — the O(n^2) bordered update. When
  /// false, every iteration rebuilds the models with a full frozen-hyper
  /// refit, the pre-incremental reference path; both paths produce
  /// bit-identical search trajectories (regression-tested), so the flag
  /// exists only as that test's oracle and as a kill switch.
  bool incremental_posterior = true;
};

/// MOBO engine: Algorithm 2 of the paper.
class MoboEngine {
 public:
  /// Draw one random encoded design point.
  using Sampler = std::function<std::vector<double>(std::mt19937_64&)>;
  /// Evaluate the K objectives at an encoded design point.
  using Objectives = std::function<std::vector<double>(const std::vector<double>&)>;
  /// Evaluate a batch of design points at once, returning one objective
  /// vector per input in input order. Lets the caller fan the warm-up
  /// evaluations out over a thread pool (see core::NasDriver).
  using BatchObjectives = std::function<std::vector<std::vector<double>>(
      const std::vector<std::vector<double>>&)>;
  /// Optional progress hook: (0-based evaluation index, observation).
  using ProgressHook = std::function<void(std::size_t, const Observation&)>;

  MoboEngine(MoboConfig config, std::size_t num_objectives, Sampler sampler,
             Objectives objectives);

  /// Run warm-up plus all BO iterations. May be called once per engine.
  void run();

  /// Run only `n` additional evaluations (warm-up first if pending); useful
  /// for tests and incremental experiments.
  void step(std::size_t n);

  /// Warm-start with previously evaluated points (e.g. a search at another
  /// throughput setting). Seeded observations count toward the warm-up
  /// budget but cost no objective evaluations. Must be called before any
  /// step()/run(). Throws std::logic_error otherwise, std::invalid_argument
  /// on arity mismatches.
  void seed_observations(const std::vector<Observation>& observations);

  /// Capture the engine state between evaluations. Safe to call whenever no
  /// step()/run() is in flight; the result plus the original config and
  /// callbacks reproduces the remaining trajectory bit-identically.
  MoboSnapshot snapshot() const;

  /// Restore a snapshot into a freshly constructed engine: observations,
  /// RNG stream, counters, duplicate index, Pareto front and normalizer are
  /// reinstated and the GP posteriors are rebuilt with the saved (frozen)
  /// hyper-parameters. Must be called before any step()/run()
  /// (std::logic_error otherwise); throws std::invalid_argument when the
  /// snapshot disagrees with this engine's configuration (objective count,
  /// warm-up budget, pool size, seed, refit period, posterior mode).
  void restore(const MoboSnapshot& snapshot);

  const std::vector<Observation>& history() const { return history_; }
  const ParetoFront& front() const { return front_; }
  std::size_t num_objectives() const { return num_objectives_; }
  /// Evaluations consumed so far (seeded + warm-up + BO iterations).
  std::size_t evaluations_done() const { return evaluations_done_; }
  void set_progress_hook(ProgressHook hook) { progress_ = std::move(hook); }

  /// Install a batch evaluator used for the random warm-up phase (BO
  /// iterations are inherently sequential). Warm-up design points are still
  /// drawn serially from the engine RNG, so history is bit-identical to the
  /// point-at-a-time path as long as the batch callback returns the same
  /// values the scalar callback would.
  void set_batch_objectives(BatchObjectives batch) { batch_objectives_ = std::move(batch); }

 private:
  void evaluate_and_record(const std::vector<double>& x);
  /// Evaluate a batch (via batch_objectives_ when installed, else one by
  /// one) and record results in input order.
  void evaluate_batch(const std::vector<std::vector<double>>& xs);
  /// Record an evaluated observation: normalizer, Pareto front, history,
  /// duplicate index, progress hook — the single place history_ grows.
  void record_observation(const std::vector<double>& x, std::vector<double> y);
  void refit_models(bool tune_hyperparameters);
  /// O(n^2) posterior append: feed one freshly recorded observation to every
  /// objective GP via GaussianProcess::observe().
  void extend_models(const Observation& observation);
  std::vector<double> propose_next();

  /// FNV-1a over the raw bits of each coordinate (±0.0 collapsed so keys
  /// that compare equal under operator== hash equally). Used by the
  /// duplicate-candidate index; lookups keep the exact accept/reject
  /// semantics of the old O(history) linear scan at O(1).
  struct EncodedPointHash {
    std::size_t operator()(const std::vector<double>& v) const noexcept {
      std::uint64_t h = 1469598103934665603ull;
      for (double d : v) {
        const double canonical = d == 0.0 ? 0.0 : d;
        std::uint64_t bits = 0;
        std::memcpy(&bits, &canonical, sizeof(bits));
        h ^= bits;
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  MoboConfig config_;
  std::size_t num_objectives_;
  Sampler sampler_;
  Objectives objectives_;
  BatchObjectives batch_objectives_;
  ProgressHook progress_;

  std::mt19937_64 rng_;
  std::vector<Observation> history_;
  std::unordered_set<std::vector<double>, EncodedPointHash> seen_;  // encoded x of history_
  ParetoFront front_;
  ObjectiveNormalizer normalizer_;
  std::vector<GaussianProcess> gps_;
  std::size_t evaluations_done_ = 0;
  std::size_t iterations_since_refit_ = 0;
  bool models_ready_ = false;
};

}  // namespace lens::opt
