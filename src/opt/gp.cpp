#include "opt/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "par/parallel.hpp"

namespace lens::opt {

GaussianProcess::GaussianProcess(GpConfig config)
    : config_(config),
      kernel_(make_kernel(config.signal_variance, config.length_scale)),
      noise_variance_(config.noise_variance) {}

std::unique_ptr<Kernel> GaussianProcess::make_kernel(double signal_variance,
                                                     double length_scale) const {
  switch (config_.family) {
    case KernelFamily::kRbf:
      return std::make_unique<RbfKernel>(signal_variance, length_scale);
    case KernelFamily::kMatern52:
      return std::make_unique<Matern52Kernel>(signal_variance, length_scale);
    case KernelFamily::kHamming:
      return std::make_unique<HammingKernel>(signal_variance, length_scale);
  }
  throw std::logic_error("GaussianProcess: unknown kernel family");
}

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("GaussianProcess::fit: empty or mismatched data");
  }
  const std::size_t dim = x.front().size();
  for (const auto& row : x) {
    if (row.size() != dim) throw std::invalid_argument("GaussianProcess::fit: ragged X");
  }
  x_ = std::move(x);
  y_ = std::move(y);
  standardize_targets();

  if (!config_.tune_hyperparameters) {
    if (!std::isfinite(try_fit(config_.signal_variance, config_.length_scale,
                               config_.noise_variance))) {
      throw std::domain_error("GaussianProcess::fit: Gram matrix not positive definite");
    }
    return;
  }

  // Grid search over hyper-parameters by log marginal likelihood. The grid
  // is small by design: genotypes live in [0,1]^d so length scales beyond a
  // few units make the GP a constant, and normalized targets pin the signal
  // variance near 1. Each grid point needs its own Gram factorization —
  // independent work, scored in parallel with an argmax over the fixed grid
  // order, so the winner is the same for any thread count.
  static constexpr double kLengthScales[] = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
  static constexpr double kSignalVariances[] = {0.5, 1.0, 2.0};
  static constexpr double kNoiseVariances[] = {1e-4, 1e-3, 1e-2, 1e-1};

  struct GridPoint {
    double signal, length, noise;
  };
  std::vector<GridPoint> grid;
  for (double l : kLengthScales) {
    for (double s : kSignalVariances) {
      for (double n : kNoiseVariances) grid.push_back({s, l, n});
    }
  }
  const std::vector<double> lmls = par::parallel_map(grid.size(), [&](std::size_t i) {
    const auto kernel = make_kernel(grid[i].signal, grid[i].length);
    return factorize_and_score(*kernel, grid[i].noise, nullptr, nullptr);
  });
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < lmls.size(); ++i) {
    if (lmls[i] > best) {
      best = lmls[i];
      best_index = i;
    }
  }
  if (!std::isfinite(best)) {
    throw std::domain_error("GaussianProcess::fit: no usable hyper-parameters");
  }
  // Fit with the winner so the cached factorization matches.
  try_fit(grid[best_index].signal, grid[best_index].length, grid[best_index].noise);
}

void GaussianProcess::standardize_targets() {
  double mean = 0.0;
  for (double v : y_) mean += v;
  mean /= static_cast<double>(y_.size());
  double var = 0.0;
  for (double v : y_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(y_.size());
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  y_normalized_.resize(y_.size());
  for (std::size_t i = 0; i < y_.size(); ++i) y_normalized_[i] = (y_[i] - y_mean_) / y_std_;
}

double GaussianProcess::factorize_and_score(const Kernel& kernel, double noise_variance,
                                            CholeskyFactor* factor_out,
                                            std::vector<double>* alpha_out) const {
  Matrix k = kernel.gram(x_);
  k.add_diagonal(noise_variance + 1e-9);
  CholeskyFactor factor;
  try {
    factor = CholeskyFactor::factorize(k);
  } catch (const std::domain_error&) {
    return -std::numeric_limits<double>::infinity();
  }
  std::vector<double> alpha = factor.solve(y_normalized_);
  const double n = static_cast<double>(x_.size());
  const double lml = -0.5 * dot(y_normalized_, alpha) - 0.5 * factor.log_det() -
                     0.5 * n * std::log(2.0 * std::numbers::pi);
  if (!std::isfinite(lml)) return -std::numeric_limits<double>::infinity();
  if (factor_out) *factor_out = std::move(factor);
  if (alpha_out) *alpha_out = std::move(alpha);
  return lml;
}

double GaussianProcess::try_fit(double signal_variance, double length_scale,
                                double noise_variance) {
  auto kernel = make_kernel(signal_variance, length_scale);
  CholeskyFactor factor;
  std::vector<double> alpha;
  const double lml = factorize_and_score(*kernel, noise_variance, &factor, &alpha);
  if (!std::isfinite(lml)) return lml;

  kernel_ = std::move(kernel);
  noise_variance_ = noise_variance;
  factor_ = std::move(factor);
  alpha_ = std::move(alpha);
  log_marginal_likelihood_ = lml;
  return lml;
}

GaussianProcess GaussianProcess::from_snapshot(GpConfig base, const GpHyperparameters& hp,
                                               std::vector<std::vector<double>> x,
                                               std::vector<double> y) {
  base.tune_hyperparameters = false;
  base.signal_variance = hp.signal_variance;
  base.length_scale = hp.length_scale;
  base.noise_variance = hp.noise_variance;
  GaussianProcess gp(base);
  gp.fit(std::move(x), std::move(y));
  return gp;
}

void GaussianProcess::observe(std::vector<double> x, double y) {
  if (!is_fitted()) {
    throw std::logic_error("GaussianProcess::observe: model must be fitted first");
  }
  if (x.size() != x_.front().size()) {
    throw std::invalid_argument("GaussianProcess::observe: dimension mismatch");
  }
  // Only the bordered Gram row is evaluated; extend() appends it to the
  // cached factor in O(n^2) or throws (leaving the model untouched) exactly
  // when a full refactorization of the bordered matrix would fail.
  const Kernel::GramRow row = kernel_->gram_row(x_, x);
  factor_.extend(row.cross, row.self + (noise_variance_ + 1e-9));
  x_.push_back(std::move(x));
  y_.push_back(y);
  standardize_targets();
  alpha_ = factor_.solve(y_normalized_);
  const double n = static_cast<double>(x_.size());
  log_marginal_likelihood_ = -0.5 * dot(y_normalized_, alpha_) - 0.5 * factor_.log_det() -
                             0.5 * n * std::log(2.0 * std::numbers::pi);
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!is_fitted()) {
    return {0.0, kernel_->variance()};
  }
  const std::vector<double> k_star = kernel_->cross(x_, x);
  const double mean_n = dot(k_star, alpha_);
  const std::vector<double> v = factor_.solve_lower(k_star);
  double var_n = kernel_->variance() - dot(v, v);
  var_n = std::max(var_n, 1e-12);
  return {y_mean_ + y_std_ * mean_n, y_std_ * y_std_ * var_n};
}

std::vector<double> GaussianProcess::sample_at(
    const std::vector<std::vector<double>>& xs, std::mt19937_64& rng) const {
  const std::size_t m = xs.size();
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> z(m);
  for (double& v : z) v = gauss(rng);
  return sample_with_noise(xs, z);
}

std::vector<double> GaussianProcess::prior_sample(const std::vector<std::vector<double>>& xs,
                                                  const std::vector<double>& z) const {
  // Prior draw: mean 0, covariance = kernel Gram over xs.
  const std::size_t m = xs.size();
  Matrix k = kernel_->gram(xs);
  k.add_diagonal(1e-8);
  const CholeskyFactor l = CholeskyFactor::factorize(k);
  std::vector<double> out(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += l.at(i, j) * z[j];
    out[i] = acc;
  }
  return out;
}

void GaussianProcess::sample_cross_solve(const std::vector<std::vector<double>>& xs,
                                         std::size_t i, std::vector<double>& mean,
                                         std::vector<std::vector<double>>& vs) const {
  const std::vector<double> k_star = kernel_->cross(x_, xs[i]);
  mean[i] = dot(k_star, alpha_);
  vs[i] = factor_.solve_lower(k_star);
}

void GaussianProcess::sample_cov_row(const std::vector<std::vector<double>>& xs,
                                     const std::vector<std::vector<double>>& vs,
                                     std::size_t i, Matrix& cov) const {
  const std::size_t m = xs.size();
  for (std::size_t j = i; j < m; ++j) {
    const double kij = (*kernel_)(xs[i], xs[j]);
    const double v = kij - dot(vs[i], vs[j]);
    cov(i, j) = v;
    cov(j, i) = v;
  }
}

std::vector<double> GaussianProcess::sample_finish(const Matrix& cov,
                                                   const std::vector<double>& mean,
                                                   const std::vector<double>& z) const {
  const std::size_t m = mean.size();
  // Jitter escalation: posterior covariances of near-duplicate query points
  // are frequently semi-definite.
  CholeskyFactor l;
  double jitter = 1e-8;
  for (;;) {
    Matrix attempt = cov;
    attempt.add_diagonal(jitter);
    try {
      l = CholeskyFactor::factorize(attempt);
      break;
    } catch (const std::domain_error&) {
      jitter *= 10.0;
      if (jitter > 1.0) {
        throw std::domain_error("GaussianProcess::sample_at: covariance irreparably indefinite");
      }
    }
  }
  std::vector<double> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = mean[i];
    for (std::size_t j = 0; j <= i; ++j) acc += l.at(i, j) * z[j];
    out[i] = y_mean_ + y_std_ * acc;
  }
  return out;
}

std::vector<double> GaussianProcess::sample_with_noise(
    const std::vector<std::vector<double>>& xs, const std::vector<double>& z) const {
  if (xs.size() != z.size()) {
    throw std::invalid_argument("GaussianProcess::sample_with_noise: z size mismatch");
  }
  if (!is_fitted()) return prior_sample(xs, z);

  const std::size_t m = xs.size();
  // Posterior mean and covariance over the query block. Each query point's
  // cross-covariance solve and each covariance row touch only their own
  // slots, so both loops parallelize without changing a single bit (the
  // caller consumed the generator serially before handing us z).
  std::vector<std::vector<double>> vs(m);  // V = L^{-1} K_{train,query} columns
  std::vector<double> mean(m);
  par::parallel_for(m, [&](std::size_t i) { sample_cross_solve(xs, i, mean, vs); });
  Matrix cov(m, m);
  par::parallel_for(m, [&](std::size_t i) { sample_cov_row(xs, vs, i, cov); });
  return sample_finish(cov, mean, z);
}

std::vector<std::vector<double>> sample_objectives_at(
    const std::vector<GaussianProcess>& gps, const std::vector<std::vector<double>>& xs,
    std::mt19937_64& rng) {
  const std::size_t num = gps.size();
  const std::size_t m = xs.size();

  // Draw every objective's z vector serially in objective order — the exact
  // generator consumption order of the per-objective sample_at loop this
  // function batches, so the two paths stay bit-identical. The distribution
  // object is per-objective on purpose: sample_at constructs a fresh one,
  // and std::normal_distribution caches a second polar-method variate, so a
  // single shared instance would consume the generator differently whenever
  // m is odd.
  std::vector<std::vector<double>> z(num, std::vector<double>(m));
  for (std::size_t k = 0; k < num; ++k) {
    std::normal_distribution<double> gauss(0.0, 1.0);
    for (double& v : z[k]) v = gauss(rng);
  }

  // Stage A + B flattened across objectives: num * m cross-covariance
  // solves, then num * m covariance rows, each writing only its own slots.
  // An m-wide section per objective becomes one num*m-wide section, which
  // is what lets the chunked pool amortize imbalanced rows.
  std::vector<std::vector<std::vector<double>>> vs(num,
                                                   std::vector<std::vector<double>>(m));
  std::vector<std::vector<double>> mean(num, std::vector<double>(m));
  par::parallel_for(num * m, [&](std::size_t idx) {
    const std::size_t k = idx / m;
    if (!gps[k].is_fitted()) return;  // prior draws skip straight to stage C
    gps[k].sample_cross_solve(xs, idx % m, mean[k], vs[k]);
  });
  std::vector<Matrix> cov(num);
  for (std::size_t k = 0; k < num; ++k) {
    if (gps[k].is_fitted()) cov[k] = Matrix(m, m);
  }
  par::parallel_for(num * m, [&](std::size_t idx) {
    const std::size_t k = idx / m;
    if (!gps[k].is_fitted()) return;
    gps[k].sample_cov_row(xs, vs[k], idx % m, cov[k]);
  });

  // Stage C: the O(m^3) covariance factorizations — serial inside a single
  // sample_at — run concurrently, one per objective.
  std::vector<std::vector<double>> out(num);
  par::parallel_for(num, [&](std::size_t k) {
    out[k] = gps[k].is_fitted() ? gps[k].sample_finish(cov[k], mean[k], z[k])
                                : gps[k].prior_sample(xs, z[k]);
  });
  return out;
}

}  // namespace lens::opt
