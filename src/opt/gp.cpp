#include "opt/gp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "par/parallel.hpp"

namespace lens::opt {

GaussianProcess::GaussianProcess(GpConfig config)
    : config_(config),
      kernel_(make_kernel(config.signal_variance, config.length_scale)),
      noise_variance_(config.noise_variance) {}

std::unique_ptr<Kernel> GaussianProcess::make_kernel(double signal_variance,
                                                     double length_scale) const {
  switch (config_.family) {
    case KernelFamily::kRbf:
      return std::make_unique<RbfKernel>(signal_variance, length_scale);
    case KernelFamily::kMatern52:
      return std::make_unique<Matern52Kernel>(signal_variance, length_scale);
    case KernelFamily::kHamming:
      return std::make_unique<HammingKernel>(signal_variance, length_scale);
  }
  throw std::logic_error("GaussianProcess: unknown kernel family");
}

void GaussianProcess::fit(std::vector<std::vector<double>> x, std::vector<double> y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("GaussianProcess::fit: empty or mismatched data");
  }
  const std::size_t dim = x.front().size();
  for (const auto& row : x) {
    if (row.size() != dim) throw std::invalid_argument("GaussianProcess::fit: ragged X");
  }
  x_ = std::move(x);

  // Standardize targets.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double var = 0.0;
  for (double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(y.size());
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  y_normalized_.resize(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) y_normalized_[i] = (y[i] - y_mean_) / y_std_;

  if (!config_.tune_hyperparameters) {
    if (!std::isfinite(try_fit(config_.signal_variance, config_.length_scale,
                               config_.noise_variance))) {
      throw std::domain_error("GaussianProcess::fit: Gram matrix not positive definite");
    }
    return;
  }

  // Grid search over hyper-parameters by log marginal likelihood. The grid
  // is small by design: genotypes live in [0,1]^d so length scales beyond a
  // few units make the GP a constant, and normalized targets pin the signal
  // variance near 1. Each grid point needs its own Gram factorization —
  // independent work, scored in parallel with an argmax over the fixed grid
  // order, so the winner is the same for any thread count.
  static constexpr double kLengthScales[] = {0.1, 0.2, 0.4, 0.8, 1.6, 3.2};
  static constexpr double kSignalVariances[] = {0.5, 1.0, 2.0};
  static constexpr double kNoiseVariances[] = {1e-4, 1e-3, 1e-2, 1e-1};

  struct GridPoint {
    double signal, length, noise;
  };
  std::vector<GridPoint> grid;
  for (double l : kLengthScales) {
    for (double s : kSignalVariances) {
      for (double n : kNoiseVariances) grid.push_back({s, l, n});
    }
  }
  const std::vector<double> lmls = par::parallel_map(grid.size(), [&](std::size_t i) {
    return grid_log_marginal_likelihood(grid[i].signal, grid[i].length, grid[i].noise);
  });
  double best = -std::numeric_limits<double>::infinity();
  std::size_t best_index = 0;
  for (std::size_t i = 0; i < lmls.size(); ++i) {
    if (lmls[i] > best) {
      best = lmls[i];
      best_index = i;
    }
  }
  if (!std::isfinite(best)) {
    throw std::domain_error("GaussianProcess::fit: no usable hyper-parameters");
  }
  // Fit with the winner so the cached factorization matches.
  try_fit(grid[best_index].signal, grid[best_index].length, grid[best_index].noise);
}

double GaussianProcess::grid_log_marginal_likelihood(double signal_variance,
                                                     double length_scale,
                                                     double noise_variance) const {
  const auto kernel = make_kernel(signal_variance, length_scale);
  Matrix k = kernel->gram(x_);
  k.add_diagonal(noise_variance + 1e-9);
  Matrix l;
  try {
    l = cholesky(k);
  } catch (const std::domain_error&) {
    return -std::numeric_limits<double>::infinity();
  }
  const std::vector<double> alpha = cholesky_solve(l, y_normalized_);
  const double n = static_cast<double>(x_.size());
  const double lml = -0.5 * dot(y_normalized_, alpha) - 0.5 * log_det_from_cholesky(l) -
                     0.5 * n * std::log(2.0 * std::numbers::pi);
  return std::isfinite(lml) ? lml : -std::numeric_limits<double>::infinity();
}

double GaussianProcess::try_fit(double signal_variance, double length_scale,
                                double noise_variance) {
  auto kernel = make_kernel(signal_variance, length_scale);
  Matrix k = kernel->gram(x_);
  k.add_diagonal(noise_variance + 1e-9);
  Matrix l;
  try {
    l = cholesky(k);
  } catch (const std::domain_error&) {
    return -std::numeric_limits<double>::infinity();
  }
  std::vector<double> alpha = cholesky_solve(l, y_normalized_);
  const double n = static_cast<double>(x_.size());
  const double lml = -0.5 * dot(y_normalized_, alpha) - 0.5 * log_det_from_cholesky(l) -
                     0.5 * n * std::log(2.0 * std::numbers::pi);
  if (!std::isfinite(lml)) return -std::numeric_limits<double>::infinity();

  kernel_ = std::move(kernel);
  noise_variance_ = noise_variance;
  chol_ = std::move(l);
  alpha_ = std::move(alpha);
  log_marginal_likelihood_ = lml;
  return lml;
}

GaussianProcess::Prediction GaussianProcess::predict(const std::vector<double>& x) const {
  if (!is_fitted()) {
    return {0.0, kernel_->variance()};
  }
  const std::vector<double> k_star = kernel_->cross(x_, x);
  const double mean_n = dot(k_star, alpha_);
  const std::vector<double> v = solve_lower(chol_, k_star);
  double var_n = kernel_->variance() - dot(v, v);
  var_n = std::max(var_n, 1e-12);
  return {y_mean_ + y_std_ * mean_n, y_std_ * y_std_ * var_n};
}

std::vector<double> GaussianProcess::sample_at(
    const std::vector<std::vector<double>>& xs, std::mt19937_64& rng) const {
  const std::size_t m = xs.size();
  std::normal_distribution<double> gauss(0.0, 1.0);
  std::vector<double> z(m);
  for (double& v : z) v = gauss(rng);

  if (!is_fitted()) {
    // Prior draw: mean 0, covariance = kernel Gram over xs.
    Matrix k = kernel_->gram(xs);
    k.add_diagonal(1e-8);
    const Matrix l = cholesky(k);
    std::vector<double> out(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j <= i; ++j) acc += l(i, j) * z[j];
      out[i] = acc;
    }
    return out;
  }

  // Posterior mean and covariance over the query block. Each query point's
  // cross-covariance solve and each covariance row touch only their own
  // slots, so both loops parallelize without changing a single bit (the RNG
  // draw above already consumed the generator serially).
  std::vector<std::vector<double>> vs(m);  // V = L^{-1} K_{train,query} columns
  std::vector<double> mean(m);
  par::parallel_for(m, [&](std::size_t i) {
    const std::vector<double> k_star = kernel_->cross(x_, xs[i]);
    mean[i] = dot(k_star, alpha_);
    vs[i] = solve_lower(chol_, k_star);
  });
  Matrix cov(m, m);
  par::parallel_for(m, [&](std::size_t i) {
    for (std::size_t j = i; j < m; ++j) {
      const double kij = (*kernel_)(xs[i], xs[j]);
      const double v = kij - dot(vs[i], vs[j]);
      cov(i, j) = v;
      cov(j, i) = v;
    }
  });
  // Jitter escalation: posterior covariances of near-duplicate query points
  // are frequently semi-definite.
  Matrix l;
  double jitter = 1e-8;
  for (;;) {
    Matrix attempt = cov;
    attempt.add_diagonal(jitter);
    try {
      l = cholesky(attempt);
      break;
    } catch (const std::domain_error&) {
      jitter *= 10.0;
      if (jitter > 1.0) {
        throw std::domain_error("GaussianProcess::sample_at: covariance irreparably indefinite");
      }
    }
  }
  std::vector<double> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    double acc = mean[i];
    for (std::size_t j = 0; j <= i; ++j) acc += l(i, j) * z[j];
    out[i] = y_mean_ + y_std_ * acc;
  }
  return out;
}

}  // namespace lens::opt
