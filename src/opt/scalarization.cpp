#include "opt/scalarization.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lens::opt {

ObjectiveNormalizer::ObjectiveNormalizer(std::size_t num_objectives)
    : lo_(num_objectives, std::numeric_limits<double>::infinity()),
      hi_(num_objectives, -std::numeric_limits<double>::infinity()) {
  if (num_objectives == 0) {
    throw std::invalid_argument("ObjectiveNormalizer: need at least one objective");
  }
}

void ObjectiveNormalizer::observe(const std::vector<double>& objectives) {
  if (objectives.size() != lo_.size()) {
    throw std::invalid_argument("ObjectiveNormalizer::observe: size mismatch");
  }
  for (std::size_t k = 0; k < objectives.size(); ++k) {
    lo_[k] = std::min(lo_[k], objectives[k]);
    hi_[k] = std::max(hi_[k], objectives[k]);
  }
  seen_any_ = true;
}

std::vector<double> ObjectiveNormalizer::normalize(const std::vector<double>& objectives) const {
  if (objectives.size() != lo_.size()) {
    throw std::invalid_argument("ObjectiveNormalizer::normalize: size mismatch");
  }
  std::vector<double> out(objectives.size());
  for (std::size_t k = 0; k < objectives.size(); ++k) {
    const double width = hi_[k] - lo_[k];
    if (!seen_any_ || width <= 1e-12) {
      out[k] = 0.5;
    } else {
      out[k] = (objectives[k] - lo_[k]) / width;
    }
  }
  return out;
}

double augmented_chebyshev(const std::vector<double>& f, const std::vector<double>& weights,
                           double rho) {
  if (f.size() != weights.size() || f.empty()) {
    throw std::invalid_argument("augmented_chebyshev: size mismatch");
  }
  double max_term = -std::numeric_limits<double>::infinity();
  double sum_term = 0.0;
  for (std::size_t k = 0; k < f.size(); ++k) {
    const double wf = weights[k] * f[k];
    max_term = std::max(max_term, wf);
    sum_term += wf;
  }
  return max_term + rho * sum_term;
}

std::vector<double> random_simplex_weights(std::size_t k, std::mt19937_64& rng) {
  if (k == 0) throw std::invalid_argument("random_simplex_weights: k must be positive");
  std::exponential_distribution<double> expo(1.0);
  std::vector<double> w(k);
  double total = 0.0;
  for (double& v : w) {
    v = expo(rng);
    total += v;
  }
  for (double& v : w) v /= total;
  return w;
}

}  // namespace lens::opt
