#include "opt/pareto.hpp"

#include <algorithm>
#include <stdexcept>

namespace lens::opt {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) {
    throw std::invalid_argument("dominates: objective vectors must match and be non-empty");
  }
  bool strictly_better_somewhere = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] > b[k]) return false;
    if (a[k] < b[k]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

bool ParetoFront::insert(std::size_t id, std::vector<double> objectives) {
  for (const ParetoPoint& p : points_) {
    if (dominates(p.objectives, objectives) || p.objectives == objectives) return false;
  }
  std::erase_if(points_, [&](const ParetoPoint& p) { return dominates(objectives, p.objectives); });
  points_.push_back({id, std::move(objectives)});
  return true;
}

bool ParetoFront::would_accept(const std::vector<double>& objectives) const {
  for (const ParetoPoint& p : points_) {
    if (dominates(p.objectives, objectives) || p.objectives == objectives) return false;
  }
  return true;
}

bool ParetoFront::dominates_point(const std::vector<double>& objectives) const {
  return std::any_of(points_.begin(), points_.end(), [&](const ParetoPoint& p) {
    return dominates(p.objectives, objectives);
  });
}

ParetoFront ParetoFront::from_points(const std::vector<ParetoPoint>& points) {
  ParetoFront front;
  for (const ParetoPoint& p : points) front.insert(p.id, p.objectives);
  return front;
}

double fraction_dominated(const ParetoFront& victims, const ParetoFront& aggressors) {
  if (victims.empty()) return 0.0;
  std::size_t dominated = 0;
  for (const ParetoPoint& v : victims.points()) {
    if (aggressors.dominates_point(v.objectives)) ++dominated;
  }
  return static_cast<double>(dominated) / static_cast<double>(victims.size());
}

CombinedFrontStats combined_front(const ParetoFront& a, const ParetoFront& b) {
  // Tag origin via id parity trick is fragile; rebuild with explicit origins.
  struct Tagged {
    const ParetoPoint* point;
    bool from_a;
  };
  std::vector<Tagged> all;
  all.reserve(a.size() + b.size());
  for (const ParetoPoint& p : a.points()) all.push_back({&p, true});
  for (const ParetoPoint& p : b.points()) all.push_back({&p, false});

  CombinedFrontStats stats;
  for (const Tagged& t : all) {
    bool beaten = false;
    for (const Tagged& other : all) {
      if (other.point == t.point) continue;
      if (dominates(other.point->objectives, t.point->objectives)) {
        beaten = true;
        break;
      }
      // Duplicate objective vectors: credit `a` only.
      if (!t.from_a && other.from_a && other.point->objectives == t.point->objectives) {
        beaten = true;
        break;
      }
    }
    if (!beaten) {
      ++stats.total;
      if (t.from_a) {
        ++stats.from_a;
      } else {
        ++stats.from_b;
      }
    }
  }
  stats.fraction_a = stats.total == 0
                         ? 0.0
                         : static_cast<double>(stats.from_a) / static_cast<double>(stats.total);
  return stats;
}

}  // namespace lens::opt
