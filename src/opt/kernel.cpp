#include "opt/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::opt {

std::size_t hamming_distance(const std::vector<double>& x, const std::vector<double>& y,
                             double tolerance) {
  if (x.size() != y.size()) throw std::invalid_argument("hamming_distance: size mismatch");
  std::size_t count = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i] - y[i]) > tolerance) ++count;
  }
  return count;
}

double squared_distance(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("squared_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

Matrix Kernel::gram(const std::vector<std::vector<double>>& xs) const {
  const std::size_t n = xs.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = (*this)(xs[i], xs[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

std::vector<double> Kernel::cross(const std::vector<std::vector<double>>& xs,
                                  const std::vector<double>& z) const {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i], z);
  return out;
}

Kernel::GramRow Kernel::gram_row(const std::vector<std::vector<double>>& xs,
                                 const std::vector<double>& z) const {
  return {cross(xs, z), (*this)(z, z)};
}

namespace {
void check_params(double signal_variance, double length_scale) {
  if (signal_variance <= 0.0 || length_scale <= 0.0) {
    throw std::invalid_argument("kernel: hyper-parameters must be positive");
  }
}
}  // namespace

RbfKernel::RbfKernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double RbfKernel::operator()(const std::vector<double>& x,
                             const std::vector<double>& y) const {
  const double d2 = squared_distance(x, y);
  return signal_variance_ * std::exp(-0.5 * d2 / (length_scale_ * length_scale_));
}

std::unique_ptr<Kernel> RbfKernel::with_params(double signal_variance,
                                               double length_scale) const {
  return std::make_unique<RbfKernel>(signal_variance, length_scale);
}

HammingKernel::HammingKernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double HammingKernel::operator()(const std::vector<double>& x,
                                 const std::vector<double>& y) const {
  const double d = static_cast<double>(x.size());
  const double h = static_cast<double>(hamming_distance(x, y));
  return signal_variance_ * std::exp(-h / (length_scale_ * std::max(d, 1.0)));
}

std::unique_ptr<Kernel> HammingKernel::with_params(double signal_variance,
                                                   double length_scale) const {
  return std::make_unique<HammingKernel>(signal_variance, length_scale);
}

Matern52Kernel::Matern52Kernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double Matern52Kernel::operator()(const std::vector<double>& x,
                                  const std::vector<double>& y) const {
  const double r = std::sqrt(squared_distance(x, y));
  const double s = std::sqrt(5.0) * r / length_scale_;
  return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

std::unique_ptr<Kernel> Matern52Kernel::with_params(double signal_variance,
                                                    double length_scale) const {
  return std::make_unique<Matern52Kernel>(signal_variance, length_scale);
}

}  // namespace lens::opt
