#include "opt/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace lens::opt {

std::size_t hamming_distance(const std::vector<double>& x, const std::vector<double>& y,
                             double tolerance) {
  if (x.size() != y.size()) throw std::invalid_argument("hamming_distance: size mismatch");
  std::size_t count = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (std::abs(x[i] - y[i]) > tolerance) ++count;
  }
  return count;
}

double squared_distance(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size()) throw std::invalid_argument("squared_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

Matrix Kernel::gram(const std::vector<std::vector<double>>& xs) const {
  const std::size_t n = xs.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = (*this)(xs[i], xs[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

std::vector<double> Kernel::cross(const std::vector<std::vector<double>>& xs,
                                  const std::vector<double>& z) const {
  std::vector<double> out(xs.size());
  cross_into(xs, z, out.data());
  return out;
}

void Kernel::cross_into(const std::vector<std::vector<double>>& xs,
                        const std::vector<double>& z, double* out) const {
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(xs[i], z);
}

Kernel::GramRow Kernel::gram_row(const std::vector<std::vector<double>>& xs,
                                 const std::vector<double>& z) const {
  return {cross(xs, z), (*this)(z, z)};
}

namespace {
void check_params(double signal_variance, double length_scale) {
  if (signal_variance <= 0.0 || length_scale <= 0.0) {
    throw std::invalid_argument("kernel: hyper-parameters must be positive");
  }
}

// Four squared distances against a shared query, one feature pass. Each
// row keeps its own accumulator updated in ascending feature order with the
// exact `acc += d * d` of squared_distance(), so every lane reproduces the
// scalar result bit-for-bit; the four independent chains are what the
// compiler vectorizes.
inline void squared_distance_x4(const double* r0, const double* r1, const double* r2,
                                const double* r3, const double* z, std::size_t dim,
                                double out[4]) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  for (std::size_t f = 0; f < dim; ++f) {
    const double zf = z[f];
    const double d0 = r0[f] - zf;
    const double d1 = r1[f] - zf;
    const double d2 = r2[f] - zf;
    const double d3 = r3[f] - zf;
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  out[0] = a0;
  out[1] = a1;
  out[2] = a2;
  out[3] = a3;
}

// True when all four rows have the query's dimensionality; mismatches fall
// back to operator() so the blocked path surfaces the identical
// std::invalid_argument the scalar path throws.
inline bool rows_match_x4(const std::vector<std::vector<double>>& xs, std::size_t i,
                          std::size_t dim) {
  return xs[i].size() == dim && xs[i + 1].size() == dim && xs[i + 2].size() == dim &&
         xs[i + 3].size() == dim;
}
}  // namespace

RbfKernel::RbfKernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double RbfKernel::operator()(const std::vector<double>& x,
                             const std::vector<double>& y) const {
  const double d2 = squared_distance(x, y);
  return signal_variance_ * std::exp(-0.5 * d2 / (length_scale_ * length_scale_));
}

std::unique_ptr<Kernel> RbfKernel::with_params(double signal_variance,
                                               double length_scale) const {
  return std::make_unique<RbfKernel>(signal_variance, length_scale);
}

void RbfKernel::cross_into(const std::vector<std::vector<double>>& xs,
                           const std::vector<double>& z, double* out) const {
  const std::size_t n = xs.size();
  const std::size_t dim = z.size();
  const double ll = length_scale_ * length_scale_;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (!rows_match_x4(xs, i, dim)) {
      for (std::size_t k = 0; k < 4; ++k) out[i + k] = (*this)(xs[i + k], z);
      continue;
    }
    double d2[4];
    squared_distance_x4(xs[i].data(), xs[i + 1].data(), xs[i + 2].data(),
                        xs[i + 3].data(), z.data(), dim, d2);
    for (std::size_t k = 0; k < 4; ++k) {
      out[i + k] = signal_variance_ * std::exp(-0.5 * d2[k] / ll);
    }
  }
  for (; i < n; ++i) out[i] = (*this)(xs[i], z);
}

HammingKernel::HammingKernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double HammingKernel::operator()(const std::vector<double>& x,
                                 const std::vector<double>& y) const {
  const double d = static_cast<double>(x.size());
  const double h = static_cast<double>(hamming_distance(x, y));
  return signal_variance_ * std::exp(-h / (length_scale_ * std::max(d, 1.0)));
}

std::unique_ptr<Kernel> HammingKernel::with_params(double signal_variance,
                                                   double length_scale) const {
  return std::make_unique<HammingKernel>(signal_variance, length_scale);
}

void HammingKernel::cross_into(const std::vector<std::vector<double>>& xs,
                               const std::vector<double>& z, double* out) const {
  const std::size_t n = xs.size();
  const std::size_t dim = z.size();
  const double denom = length_scale_ * std::max(static_cast<double>(dim), 1.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (!rows_match_x4(xs, i, dim)) {
      for (std::size_t k = 0; k < 4; ++k) out[i + k] = (*this)(xs[i + k], z);
      continue;
    }
    const double* r0 = xs[i].data();
    const double* r1 = xs[i + 1].data();
    const double* r2 = xs[i + 2].data();
    const double* r3 = xs[i + 3].data();
    std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
    for (std::size_t f = 0; f < dim; ++f) {
      const double zf = z[f];
      c0 += std::abs(r0[f] - zf) > 1e-9 ? 1 : 0;
      c1 += std::abs(r1[f] - zf) > 1e-9 ? 1 : 0;
      c2 += std::abs(r2[f] - zf) > 1e-9 ? 1 : 0;
      c3 += std::abs(r3[f] - zf) > 1e-9 ? 1 : 0;
    }
    // Exact hamming counts, so the quotient below matches operator()'s
    // -h / (l * max(d, 1)) bit-for-bit.
    out[i] = signal_variance_ * std::exp(-static_cast<double>(c0) / denom);
    out[i + 1] = signal_variance_ * std::exp(-static_cast<double>(c1) / denom);
    out[i + 2] = signal_variance_ * std::exp(-static_cast<double>(c2) / denom);
    out[i + 3] = signal_variance_ * std::exp(-static_cast<double>(c3) / denom);
  }
  for (; i < n; ++i) out[i] = (*this)(xs[i], z);
}

Matern52Kernel::Matern52Kernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  check_params(signal_variance, length_scale);
}

double Matern52Kernel::operator()(const std::vector<double>& x,
                                  const std::vector<double>& y) const {
  const double r = std::sqrt(squared_distance(x, y));
  const double s = std::sqrt(5.0) * r / length_scale_;
  return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

std::unique_ptr<Kernel> Matern52Kernel::with_params(double signal_variance,
                                                    double length_scale) const {
  return std::make_unique<Matern52Kernel>(signal_variance, length_scale);
}

void Matern52Kernel::cross_into(const std::vector<std::vector<double>>& xs,
                                const std::vector<double>& z, double* out) const {
  const std::size_t n = xs.size();
  const std::size_t dim = z.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (!rows_match_x4(xs, i, dim)) {
      for (std::size_t k = 0; k < 4; ++k) out[i + k] = (*this)(xs[i + k], z);
      continue;
    }
    double d2[4];
    squared_distance_x4(xs[i].data(), xs[i + 1].data(), xs[i + 2].data(),
                        xs[i + 3].data(), z.data(), dim, d2);
    for (std::size_t k = 0; k < 4; ++k) {
      const double r = std::sqrt(d2[k]);
      const double s = std::sqrt(5.0) * r / length_scale_;
      out[i + k] = signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
  }
  for (; i < n; ++i) out[i] = (*this)(xs[i], z);
}

}  // namespace lens::opt
