#pragma once
// Covariance kernels for Gaussian-process regression.
//
// Kernels operate on real vectors (here: [0,1]-normalized architecture
// genotypes or scaled feature vectors). Both stationary kernels share the
// (signal_variance, length_scale) hyper-parameters that GaussianProcess
// tunes by marginal likelihood.

#include <cstddef>
#include <memory>
#include <vector>

#include "opt/matrix.hpp"

namespace lens::opt {

/// Interface for a positive-definite covariance kernel k(x, y).
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance between two points.
  virtual double operator()(const std::vector<double>& x,
                            const std::vector<double>& y) const = 0;

  /// Signal variance k(x, x).
  virtual double variance() const = 0;

  /// Clone with new hyper-parameters (used during hyper-parameter search).
  virtual std::unique_ptr<Kernel> with_params(double signal_variance,
                                              double length_scale) const = 0;

  virtual double signal_variance() const = 0;
  virtual double length_scale() const = 0;

  /// Gram matrix K where K_ij = k(X_i, X_j).
  Matrix gram(const std::vector<std::vector<double>>& xs) const;

  /// Cross-covariance vector k(X_i, z) for all rows of X.
  std::vector<double> cross(const std::vector<std::vector<double>>& xs,
                            const std::vector<double>& z) const;

  /// Write k(X_i, z) into out[0..xs.size()). This is the hot path behind
  /// cross() / gram_row(): the concrete kernels override it with a blocked
  /// sweep that walks four rows per feature pass — four independent
  /// accumulator chains the compiler vectorizes across rows — while each
  /// row's accumulation order and final kernel expression stay exactly
  /// those of operator(), so blocked and scalar results are bit-identical
  /// (the base-class implementation below is the scalar oracle the tests
  /// compare against).
  virtual void cross_into(const std::vector<std::vector<double>>& xs,
                          const std::vector<double>& z, double* out) const;

  /// One bordered Gram row: the cross-covariances against the existing
  /// points plus the self-covariance k(z, z). Appending a point to a
  /// factorized Gram matrix needs exactly this O(n·d) row — not the full
  /// O(n^2·d) gram() — and `self` is evaluated through the same operator()
  /// the full Gram diagonal uses, so incremental and full factorizations
  /// see bit-identical entries.
  struct GramRow {
    std::vector<double> cross;  ///< k(X_i, z) for every existing row
    double self = 0.0;          ///< k(z, z)
  };
  GramRow gram_row(const std::vector<std::vector<double>>& xs,
                   const std::vector<double>& z) const;
};

/// Squared-exponential (RBF) kernel:
///   k(x,y) = s^2 * exp(-||x-y||^2 / (2 l^2))
class RbfKernel final : public Kernel {
 public:
  RbfKernel(double signal_variance, double length_scale);

  double operator()(const std::vector<double>& x,
                    const std::vector<double>& y) const override;
  double variance() const override { return signal_variance_; }
  std::unique_ptr<Kernel> with_params(double signal_variance,
                                      double length_scale) const override;
  double signal_variance() const override { return signal_variance_; }
  double length_scale() const override { return length_scale_; }
  void cross_into(const std::vector<std::vector<double>>& xs,
                  const std::vector<double>& z, double* out) const override;

 private:
  double signal_variance_;
  double length_scale_;
};

/// Matern-5/2 kernel:
///   k(x,y) = s^2 * (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) * exp(-sqrt(5) r / l)
/// The default for architecture-distance modelling (less smooth than RBF,
/// which suits discrete genotype spaces better).
class Matern52Kernel final : public Kernel {
 public:
  Matern52Kernel(double signal_variance, double length_scale);

  double operator()(const std::vector<double>& x,
                    const std::vector<double>& y) const override;
  double variance() const override { return signal_variance_; }
  std::unique_ptr<Kernel> with_params(double signal_variance,
                                      double length_scale) const override;
  double signal_variance() const override { return signal_variance_; }
  double length_scale() const override { return length_scale_; }
  void cross_into(const std::vector<std::vector<double>>& xs,
                  const std::vector<double>& z, double* out) const override;

 private:
  double signal_variance_;
  double length_scale_;
};

/// Exponentiated-Hamming kernel for categorical encodings:
///   k(x,y) = s^2 * exp(-H(x,y) / (l * d))
/// where H is the count of differing coordinates (tolerance 1e-9) and d the
/// dimensionality. Appropriate when genotype coordinates are categories
/// (kernel size, filter count index) rather than points on a metric axis.
class HammingKernel final : public Kernel {
 public:
  HammingKernel(double signal_variance, double length_scale);

  double operator()(const std::vector<double>& x,
                    const std::vector<double>& y) const override;
  double variance() const override { return signal_variance_; }
  std::unique_ptr<Kernel> with_params(double signal_variance,
                                      double length_scale) const override;
  double signal_variance() const override { return signal_variance_; }
  double length_scale() const override { return length_scale_; }
  void cross_into(const std::vector<std::vector<double>>& xs,
                  const std::vector<double>& z, double* out) const override;

 private:
  double signal_variance_;
  double length_scale_;
};

/// Squared Euclidean distance between two equal-length vectors.
double squared_distance(const std::vector<double>& x, const std::vector<double>& y);

/// Count of coordinates differing by more than `tolerance`.
std::size_t hamming_distance(const std::vector<double>& x, const std::vector<double>& y,
                             double tolerance = 1e-9);

}  // namespace lens::opt
