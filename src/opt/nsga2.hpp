#pragma once
// NSGA-II: elitist non-dominated-sorting genetic algorithm.
//
// An alternative multi-objective search engine with the same callback
// surface as MoboEngine, used as an ablation baseline for Algorithm 2
// (model-based vs evolutionary search under equal evaluation budgets).
// Standard components: fast non-dominated sort, crowding distance, binary
// tournament selection, uniform crossover, per-gene resampling mutation.

#include <functional>
#include <random>
#include <vector>

#include "opt/mobo.hpp"  // Observation
#include "opt/pareto.hpp"

namespace lens::opt {

struct Nsga2Config {
  std::size_t population = 32;
  std::size_t generations = 10;
  double crossover_rate = 0.9;
  /// Per-gene probability of replacement by a fresh random draw; 0 selects
  /// the 1/dimension default.
  double mutation_rate = 0.0;
  unsigned seed = 1;
  /// Attempts to repair an invalid offspring before falling back to a
  /// fresh random sample.
  std::size_t repair_attempts = 8;
};

/// NSGA-II engine over caller-encoded design points (minimization).
class Nsga2Engine {
 public:
  using Sampler = std::function<std::vector<double>(std::mt19937_64&)>;
  using Objectives = std::function<std::vector<double>(const std::vector<double>&)>;
  /// Batch evaluator with the same contract as MoboEngine::BatchObjectives.
  using BatchObjectives = MoboEngine::BatchObjectives;
  /// Optional feasibility predicate for offspring (e.g. the >=4-pools
  /// constraint); when absent, all offspring are considered valid.
  using Validator = std::function<bool(const std::vector<double>&)>;

  Nsga2Engine(Nsga2Config config, std::size_t num_objectives, Sampler sampler,
              Objectives objectives, Validator validator = nullptr);

  /// Run all generations. Total evaluations = population * (generations+1).
  void run();

  /// Install a batch evaluator. Whole generations are evaluated at once:
  /// offspring are bred serially from the engine RNG first, then scored as
  /// one batch, so history is bit-identical to the scalar path.
  void set_batch_objectives(BatchObjectives batch) { batch_objectives_ = std::move(batch); }

  const std::vector<Observation>& history() const { return history_; }
  const ParetoFront& front() const { return front_; }

 private:
  struct Individual {
    std::vector<double> x;
    std::vector<double> objectives;
    std::size_t rank = 0;        ///< non-domination front index
    double crowding = 0.0;
  };

  Individual evaluate(std::vector<double> x);
  /// Evaluate a batch of design points (via batch_objectives_ when
  /// installed) and record them into history in input order.
  std::vector<Individual> evaluate_batch(std::vector<std::vector<double>> xs);
  std::vector<double> make_offspring(const std::vector<Individual>& parents);
  const Individual& tournament(const std::vector<Individual>& population);
  static void assign_ranks(std::vector<Individual>& population);
  static void assign_crowding(std::vector<Individual>& population);
  /// Environmental selection: best `population` individuals by (rank, crowding).
  static std::vector<Individual> select(std::vector<Individual> merged, std::size_t keep);

  Nsga2Config config_;
  std::size_t num_objectives_;
  Sampler sampler_;
  Objectives objectives_;
  BatchObjectives batch_objectives_;
  Validator validator_;
  std::mt19937_64 rng_;
  std::vector<Observation> history_;
  ParetoFront front_;
};

}  // namespace lens::opt
