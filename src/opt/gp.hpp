#pragma once
// Gaussian-process regression with marginal-likelihood hyper-parameter
// selection and joint posterior sampling (the Thompson-sampling primitive
// used by the MOBO engine, paper Alg. 2 line 9: f_k = GP_k(D)).

#include <cstddef>
#include <memory>
#include <random>
#include <vector>

#include "opt/kernel.hpp"
#include "opt/matrix.hpp"

namespace lens::opt {

/// Kernel family selector for GpConfig.
enum class KernelFamily { kRbf, kMatern52, kHamming };

/// The tuned hyper-parameter triple of a fitted GP — everything the
/// checkpoint subsystem needs to persist besides the raw observations,
/// because a frozen-hyper refit over the same data reproduces the posterior
/// bit-for-bit (see DESIGN.md "Posterior maintenance").
struct GpHyperparameters {
  double signal_variance = 1.0;
  double length_scale = 0.5;
  double noise_variance = 1e-3;
};

/// Configuration for a GaussianProcess.
struct GpConfig {
  KernelFamily family = KernelFamily::kMatern52;
  /// Observation noise variance in *normalized* target units.
  double noise_variance = 1e-3;
  /// When true, (signal variance, length scale, noise) are selected by grid
  /// search over the log marginal likelihood at every fit().
  bool tune_hyperparameters = true;
  /// Initial / fallback hyper-parameters.
  double signal_variance = 1.0;
  double length_scale = 0.5;
};

/// Gaussian-process regressor over real vectors.
///
/// Targets are internally standardized (zero mean, unit variance), so the
/// kernel hyper-parameter grids are data-scale independent. All public
/// results (predict, sample_at) are reported back in the original units.
class GaussianProcess {
 public:
  explicit GaussianProcess(GpConfig config = {});

  /// Fit to a dataset. X is a list of equal-length feature vectors, y the
  /// targets. Replaces any previous fit. Throws on empty or ragged input.
  void fit(std::vector<std::vector<double>> x, std::vector<double> y);

  /// Append one observation to a fitted model in O(n^2): the cached
  /// Cholesky factor grows by one bordered row (only the new Gram row is
  /// evaluated), targets are re-standardized over the full history, and
  /// alpha / the log marginal likelihood are recomputed from the extended
  /// factor. Hyper-parameters are left untouched, and with them frozen the
  /// resulting posterior is bit-identical to a full fit() over the same
  /// data — the incremental path of the determinism contract (DESIGN.md
  /// "Posterior maintenance"). Throws std::logic_error on an unfitted
  /// model, std::invalid_argument on a dimension mismatch, and
  /// std::domain_error (model unchanged) when the extended Gram matrix is
  /// not positive definite.
  void observe(std::vector<double> x, double y);

  /// True once fit() has been called with at least one point.
  bool is_fitted() const { return !x_.empty(); }

  /// Number of training points.
  std::size_t size() const { return x_.size(); }

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;  ///< posterior variance (original units^2)
  };

  /// Posterior mean/variance at a single point. On an unfitted GP this is
  /// the prior (mean 0, kernel variance).
  Prediction predict(const std::vector<double>& x) const;

  /// One joint draw from the posterior over the given query points
  /// (original units). This is the Thompson sample used by the acquisition.
  std::vector<double> sample_at(const std::vector<std::vector<double>>& xs,
                                std::mt19937_64& rng) const;

  /// sample_at with the standard-normal vector pre-drawn by the caller
  /// (`z.size() == xs.size()`). sample_at(xs, rng) is exactly: draw z from
  /// rng, then sample_with_noise(xs, z) — splitting the draw from the
  /// deterministic tail lets batched callers consume a shared generator in
  /// a fixed serial order while the heavy linear algebra runs in parallel.
  std::vector<double> sample_with_noise(const std::vector<std::vector<double>>& xs,
                                        const std::vector<double>& z) const;

  /// Log marginal likelihood of the current fit (normalized-unit targets).
  double log_marginal_likelihood() const { return log_marginal_likelihood_; }

  double signal_variance() const { return kernel_->signal_variance(); }
  double length_scale() const { return kernel_->length_scale(); }
  double noise_variance() const { return noise_variance_; }

  /// Export the current hyper-parameter triple (checkpointing).
  GpHyperparameters hyperparameters() const {
    return {signal_variance(), length_scale(), noise_variance()};
  }

  /// Rebuild a fitted GP from checkpointed state: a frozen-hyper fit of
  /// `hp` over (x, y). The resulting posterior (factor, alpha, LML) is
  /// bit-identical to the incremental observe() chain that produced the
  /// snapshot — the restore path of the determinism contract. Throws
  /// std::domain_error when the Gram matrix is not positive definite under
  /// the saved hyper-parameters (corrupted snapshot).
  static GaussianProcess from_snapshot(GpConfig base, const GpHyperparameters& hp,
                                       std::vector<std::vector<double>> x,
                                       std::vector<double> y);

 private:
  std::unique_ptr<Kernel> make_kernel(double signal_variance, double length_scale) const;
  /// Shared factorize-and-score core: builds the Gram matrix of x_ under
  /// `kernel` + `noise_variance`, factorizes it, and returns the log
  /// marginal likelihood of y_normalized_ (or -inf when the Gram matrix is
  /// numerically unusable). On success the factor/alpha are handed back
  /// through the optional out-parameters. Side-effect free, so it doubles
  /// as the grid-search scoring kernel (safe from parallel workers).
  double factorize_and_score(const Kernel& kernel, double noise_variance,
                             CholeskyFactor* factor_out, std::vector<double>* alpha_out) const;
  /// Fit internals for a specific hyper-parameter triple; commits the
  /// factorization on success, returns LML or -inf.
  double try_fit(double signal_variance, double length_scale, double noise_variance);
  /// Recompute y_mean_/y_std_/y_normalized_ from the raw targets, in the
  /// exact summation order fit() uses (bit-identity with the full path).
  void standardize_targets();

  // Stage kernels of the posterior draw, shared by sample_with_noise and
  // the batched sample_objectives_at. Each computes exactly what the
  // corresponding slice of the monolithic sample_at used to compute, so the
  // batched path is bit-identical to the per-objective loop it replaces.
  /// Cross-covariance + mean + whitened solve for query point i.
  void sample_cross_solve(const std::vector<std::vector<double>>& xs, std::size_t i,
                          std::vector<double>& mean,
                          std::vector<std::vector<double>>& vs) const;
  /// Posterior covariance row i (writes cov(i, j) and cov(j, i), j >= i).
  void sample_cov_row(const std::vector<std::vector<double>>& xs,
                      const std::vector<std::vector<double>>& vs, std::size_t i,
                      Matrix& cov) const;
  /// Jitter-escalated factorization of `cov` plus the mean + L z combine —
  /// the serial O(m^3) tail of one posterior draw.
  std::vector<double> sample_finish(const Matrix& cov, const std::vector<double>& mean,
                                    const std::vector<double>& z) const;
  /// Prior draw (unfitted model) from a pre-drawn z.
  std::vector<double> prior_sample(const std::vector<std::vector<double>>& xs,
                                   const std::vector<double>& z) const;

  friend std::vector<std::vector<double>> sample_objectives_at(
      const std::vector<GaussianProcess>& gps, const std::vector<std::vector<double>>& xs,
      std::mt19937_64& rng);

  GpConfig config_;
  std::unique_ptr<Kernel> kernel_;
  double noise_variance_ = 1e-3;

  std::vector<std::vector<double>> x_;
  std::vector<double> y_;            // raw targets (original units)
  std::vector<double> y_normalized_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;

  CholeskyFactor factor_;        // Cholesky factor of K + noise I
  std::vector<double> alpha_;    // (K + noise I)^{-1} y_normalized
  double log_marginal_likelihood_ = 0.0;
};

/// Batched joint Thompson draws: one posterior sample per objective GP over
/// the shared query block, bit-identical to the serial loop
///     for (k) out[k] = gps[k].sample_at(xs, rng);
/// including the order in which `rng` is consumed (all z vectors are drawn
/// serially in objective order up front). The win is structural: the
/// per-query cross-covariance solves and covariance rows of ALL objectives
/// flatten into single gps.size() * xs.size()-wide parallel sections, and
/// the per-objective O(m^3) covariance factorizations — serial inside
/// sample_at — run concurrently across objectives.
std::vector<std::vector<double>> sample_objectives_at(
    const std::vector<GaussianProcess>& gps, const std::vector<std::vector<double>>& xs,
    std::mt19937_64& rng);

}  // namespace lens::opt
