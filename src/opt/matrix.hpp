#pragma once
// Small dense linear-algebra kernel used by the Gaussian-process layer.
//
// This is deliberately minimal: row-major double matrices, the handful of
// operations a GP needs (products, Cholesky factorization, triangular
// solves), and nothing else. All sizes are checked; violations throw
// std::invalid_argument so caller bugs surface immediately.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace lens::opt {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Create a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Create from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Checked element access.
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }

  /// Matrix product this * rhs.
  Matrix multiply(const Matrix& rhs) const;

  /// Matrix-vector product this * v.
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// Transpose.
  Matrix transposed() const;

  /// Elementwise sum; shapes must match.
  Matrix add(const Matrix& rhs) const;

  /// Add `value` to every diagonal element (jitter / ridge term).
  void add_diagonal(double value);

  /// Extract row r as a vector.
  std::vector<double> row(std::size_t r) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Lower-triangular Cholesky factor L of a symmetric positive-definite A
/// (A = L L^T), stored packed (row i holds i+1 doubles) so appending a row
/// moves O(n) memory instead of reallocating a dense square.
///
/// The incremental entry point is extend(): given the cross-covariance row
/// a(n, 0..n-1) and the diagonal a(n, n) of a bordered matrix
///
///     A' = [ A    r ]
///          [ r^T  d ]
///
/// it appends row n to L in O(n^2) via one forward substitution,
///
///     L'(n, 0..n-1) = L^{-1} r,   L'(n, n) = sqrt(d - ||L'(n, :)||^2),
///
/// producing *exactly* the floats a full factorize(A') would: rows 0..n-1
/// of L depend only on the leading block of A and are untouched, and the
/// forward solve performs the same multiply/subtract/divide sequence (same
/// operands, same order) as the bordered column sweep of the full
/// algorithm. factorize() itself is implemented as n successive extends,
/// which keeps the two paths bit-identical by construction. This is what
/// lets the GP layer swap refit-per-iteration for incremental appends
/// without perturbing search trajectories (see DESIGN.md "Posterior
/// maintenance").
class CholeskyFactor {
 public:
  CholeskyFactor() = default;

  /// Full factorization of a square SPD matrix. Throws std::invalid_argument
  /// when `a` is not square, std::domain_error when it is not (numerically)
  /// positive definite — same contract as the free cholesky().
  static CholeskyFactor factorize(const Matrix& a);

  /// Bordered-block append: grow the factor from n x n to (n+1) x (n+1).
  /// `cross_row` is a(n, 0..n-1) (size must equal size()), `diag` is a(n,n).
  /// O(n^2). Throws std::domain_error when the new pivot is not positive
  /// (the bordered matrix is not positive definite); the factor is left
  /// unchanged in that case.
  void extend(const std::vector<double>& cross_row, double diag);

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Lower-triangular element L(i, j); zero above the diagonal.
  double at(std::size_t i, std::size_t j) const;

  /// Solve L x = b (forward substitution), O(n^2). Implemented as a blocked
  /// sweep — 4-row panels whose partial sums over the already-settled prefix
  /// of x are independent accumulator chains (vectorizable across rows),
  /// followed by a serial 4x4 triangular finish. Every x[i] receives the
  /// exact subtract-in-ascending-j-then-divide sequence of the textbook
  /// row-oriented loop, so the result is bit-identical to
  /// solve_lower_reference() — the oracle the tests compare against.
  std::vector<double> solve_lower(const std::vector<double>& b) const;

  /// The scalar row-oriented forward substitution solve_lower() must match
  /// bit-for-bit. Kept as the regression oracle for the blocked path.
  std::vector<double> solve_lower_reference(const std::vector<double>& b) const;

  /// Solve L^T x = b (back substitution), O(n^2).
  std::vector<double> solve_lower_transpose(const std::vector<double>& b) const;

  /// Solve A x = b where A = L L^T, O(n^2).
  std::vector<double> solve(const std::vector<double>& b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_det() const;

  /// Dense lower-triangular copy (tests / interop with Matrix consumers).
  Matrix dense() const;

 private:
  double& el(std::size_t i, std::size_t j) { return data_[i * (i + 1) / 2 + j]; }
  double el(std::size_t i, std::size_t j) const { return data_[i * (i + 1) / 2 + j]; }

  std::size_t n_ = 0;
  std::vector<double> data_;  // packed rows: row i at offset i(i+1)/2, length i+1
};

/// Cholesky factorization A = L * L^T for a symmetric positive-definite A.
/// Returns the lower-triangular factor L. Throws std::domain_error when A is
/// not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve L * x = b where L is lower triangular (forward substitution).
std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b);

/// Solve L^T * x = b where L is lower triangular (back substitution on L^T).
std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& b);

/// Solve A * x = b using a precomputed Cholesky factor L of A.
std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b);

/// log(det(A)) from its Cholesky factor L: 2 * sum(log(L_ii)).
double log_det_from_cholesky(const Matrix& l);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace lens::opt
