#pragma once
// Small dense linear-algebra kernel used by the Gaussian-process layer.
//
// This is deliberately minimal: row-major double matrices, the handful of
// operations a GP needs (products, Cholesky factorization, triangular
// solves), and nothing else. All sizes are checked; violations throw
// std::invalid_argument so caller bugs surface immediately.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace lens::opt {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Create a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Create from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Checked element access.
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const { return data_; }

  /// Matrix product this * rhs.
  Matrix multiply(const Matrix& rhs) const;

  /// Matrix-vector product this * v.
  std::vector<double> multiply(const std::vector<double>& v) const;

  /// Transpose.
  Matrix transposed() const;

  /// Elementwise sum; shapes must match.
  Matrix add(const Matrix& rhs) const;

  /// Add `value` to every diagonal element (jitter / ridge term).
  void add_diagonal(double value);

  /// Extract row r as a vector.
  std::vector<double> row(std::size_t r) const;

  /// Frobenius norm.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factorization A = L * L^T for a symmetric positive-definite A.
/// Returns the lower-triangular factor L. Throws std::domain_error when A is
/// not (numerically) positive definite.
Matrix cholesky(const Matrix& a);

/// Solve L * x = b where L is lower triangular (forward substitution).
std::vector<double> solve_lower(const Matrix& l, const std::vector<double>& b);

/// Solve L^T * x = b where L is lower triangular (back substitution on L^T).
std::vector<double> solve_lower_transpose(const Matrix& l, const std::vector<double>& b);

/// Solve A * x = b using a precomputed Cholesky factor L of A.
std::vector<double> cholesky_solve(const Matrix& l, const std::vector<double>& b);

/// log(det(A)) from its Cholesky factor L: 2 * sum(log(L_ii)).
double log_det_from_cholesky(const Matrix& l);

/// Dot product; sizes must match.
double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace lens::opt
