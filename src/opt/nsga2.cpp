#include "opt/nsga2.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace lens::opt {

Nsga2Engine::Nsga2Engine(Nsga2Config config, std::size_t num_objectives, Sampler sampler,
                         Objectives objectives, Validator validator)
    : config_(config),
      num_objectives_(num_objectives),
      sampler_(std::move(sampler)),
      objectives_(std::move(objectives)),
      validator_(std::move(validator)),
      rng_(config.seed) {
  if (num_objectives_ == 0) throw std::invalid_argument("Nsga2Engine: need >=1 objective");
  if (!sampler_ || !objectives_) throw std::invalid_argument("Nsga2Engine: null callbacks");
  if (config_.population < 4) throw std::invalid_argument("Nsga2Engine: population too small");
  if (config_.crossover_rate < 0.0 || config_.crossover_rate > 1.0) {
    throw std::invalid_argument("Nsga2Engine: crossover_rate out of range");
  }
}

Nsga2Engine::Individual Nsga2Engine::evaluate(std::vector<double> x) {
  Individual ind;
  ind.objectives = objectives_(x);
  if (ind.objectives.size() != num_objectives_) {
    throw std::runtime_error("Nsga2Engine: objective callback returned wrong arity");
  }
  ind.x = std::move(x);
  front_.insert(history_.size(), ind.objectives);
  history_.push_back({ind.x, ind.objectives});
  return ind;
}

std::vector<Nsga2Engine::Individual> Nsga2Engine::evaluate_batch(
    std::vector<std::vector<double>> xs) {
  std::vector<Individual> out;
  out.reserve(xs.size());
  if (!batch_objectives_) {
    for (std::vector<double>& x : xs) out.push_back(evaluate(std::move(x)));
    return out;
  }
  std::vector<std::vector<double>> ys = batch_objectives_(xs);
  if (ys.size() != xs.size()) {
    throw std::runtime_error("Nsga2Engine: batch objective callback returned wrong count");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (ys[i].size() != num_objectives_) {
      throw std::runtime_error("Nsga2Engine: objective callback returned wrong arity");
    }
    Individual ind;
    ind.x = std::move(xs[i]);
    ind.objectives = std::move(ys[i]);
    front_.insert(history_.size(), ind.objectives);
    history_.push_back({ind.x, ind.objectives});
    out.push_back(std::move(ind));
  }
  return out;
}

void Nsga2Engine::assign_ranks(std::vector<Individual>& population) {
  const std::size_t n = population.size();
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> dominated_by(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dominates(population[i].objectives, population[j].objectives)) {
        dominated_by[i].push_back(j);
      } else if (dominates(population[j].objectives, population[i].objectives)) {
        ++domination_count[i];
      }
    }
  }
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    if (domination_count[i] == 0) {
      population[i].rank = 0;
      current.push_back(i);
    }
  }
  std::size_t rank = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominated_by[i]) {
        if (--domination_count[j] == 0) {
          population[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    ++rank;
    current = std::move(next);
  }
}

void Nsga2Engine::assign_crowding(std::vector<Individual>& population) {
  const std::size_t n = population.size();
  for (Individual& ind : population) ind.crowding = 0.0;
  if (n == 0) return;
  const std::size_t k = population.front().objectives.size();
  std::vector<std::size_t> order(n);
  for (std::size_t m = 0; m < k; ++m) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return population[a].objectives[m] < population[b].objectives[m];
    });
    const double lo = population[order.front()].objectives[m];
    const double hi = population[order.back()].objectives[m];
    population[order.front()].crowding = std::numeric_limits<double>::infinity();
    population[order.back()].crowding = std::numeric_limits<double>::infinity();
    if (hi - lo < 1e-300) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      population[order[i]].crowding += (population[order[i + 1]].objectives[m] -
                                        population[order[i - 1]].objectives[m]) /
                                       (hi - lo);
    }
  }
}

const Nsga2Engine::Individual& Nsga2Engine::tournament(
    const std::vector<Individual>& population) {
  std::uniform_int_distribution<std::size_t> pick(0, population.size() - 1);
  const Individual& a = population[pick(rng_)];
  const Individual& b = population[pick(rng_)];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

std::vector<double> Nsga2Engine::make_offspring(const std::vector<Individual>& parents) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  const std::size_t dim = parents.front().x.size();
  const double mutation_rate =
      config_.mutation_rate > 0.0 ? config_.mutation_rate : 1.0 / static_cast<double>(dim);

  for (std::size_t attempt = 0; attempt <= config_.repair_attempts; ++attempt) {
    const Individual& mother = tournament(parents);
    const Individual& father = tournament(parents);
    std::vector<double> child = mother.x;
    if (unit(rng_) < config_.crossover_rate) {
      for (std::size_t d = 0; d < dim; ++d) {
        if (unit(rng_) < 0.5) child[d] = father.x[d];
      }
    }
    // Mutation: per-gene replacement from a fresh random sample (keeps every
    // gene on the encoding grid).
    const std::vector<double> donor = sampler_(rng_);
    for (std::size_t d = 0; d < dim; ++d) {
      if (unit(rng_) < mutation_rate) child[d] = donor[d];
    }
    if (!validator_ || validator_(child)) return child;
  }
  return sampler_(rng_);  // repair failed: random immigrant
}

std::vector<Nsga2Engine::Individual> Nsga2Engine::select(std::vector<Individual> merged,
                                                         std::size_t keep) {
  assign_ranks(merged);
  assign_crowding(merged);
  std::sort(merged.begin(), merged.end(), [](const Individual& a, const Individual& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.crowding > b.crowding;
  });
  merged.resize(keep);
  return merged;
}

void Nsga2Engine::run() {
  // Breeding consumes the engine RNG, evaluation never does — so each
  // generation is bred serially first, then scored as one batch (which the
  // batch callback may parallelize) with results recorded in breeding order.
  std::vector<std::vector<double>> seeds;
  seeds.reserve(config_.population);
  for (std::size_t i = 0; i < config_.population; ++i) seeds.push_back(sampler_(rng_));
  std::vector<Individual> population = evaluate_batch(std::move(seeds));
  assign_ranks(population);
  assign_crowding(population);

  for (std::size_t generation = 0; generation < config_.generations; ++generation) {
    std::vector<std::vector<double>> offspring;
    offspring.reserve(config_.population);
    for (std::size_t i = 0; i < config_.population; ++i) {
      offspring.push_back(make_offspring(population));
    }
    std::vector<Individual> merged = population;
    for (Individual& child : evaluate_batch(std::move(offspring))) {
      merged.push_back(std::move(child));
    }
    population = select(std::move(merged), config_.population);
  }
}

}  // namespace lens::opt
