#pragma once
// Acquisition strategies over a finite candidate pool (paper Alg. 2
// lines 8-11: sample f_k from each GP posterior, build the acquisition,
// return the maximizer as the next query point).

#include <random>
#include <vector>

#include "opt/gp.hpp"
#include "opt/scalarization.hpp"

namespace lens::opt {

/// How the per-objective posterior samples are reduced to a single ranking.
enum class AcquisitionKind {
  /// Random-weight augmented-Chebyshev scalarization of joint Thompson
  /// samples (Dragonfly-style multi-objective TS). Default.
  kThompsonScalarized,
  /// Pure exploitation of posterior means with random scalarization
  /// weights; useful as an ablation baseline.
  kMeanScalarized,
  /// LCB (mean - beta * std) per objective, then scalarized.
  kLowerConfidenceBound,
};

struct AcquisitionConfig {
  AcquisitionKind kind = AcquisitionKind::kThompsonScalarized;
  double chebyshev_rho = 0.05;
  double lcb_beta = 2.0;
};

/// Pick the index of the most promising pool candidate.
///
/// `gps` holds one fitted GP per objective, `pool` the candidate encodings,
/// `normalizer` the observed objective ranges used to put sampled objective
/// values on comparable scales. Throws when the pool is empty or the GP
/// count is zero.
std::size_t select_candidate(const std::vector<GaussianProcess>& gps,
                             const std::vector<std::vector<double>>& pool,
                             const ObjectiveNormalizer& normalizer,
                             const AcquisitionConfig& config, std::mt19937_64& rng);

}  // namespace lens::opt
