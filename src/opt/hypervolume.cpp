#include "opt/hypervolume.hpp"

#include <algorithm>
#include <stdexcept>

#include "opt/pareto.hpp"

namespace lens::opt {

namespace {

/// Recursive slicing: integrate over the first objective, computing the
/// (d-1)-dimensional hypervolume of each slab.
double hso(std::vector<std::vector<double>> points, const std::vector<double>& reference) {
  const std::size_t d = reference.size();
  if (points.empty()) return 0.0;
  if (d == 1) {
    double best = reference[0];
    for (const auto& p : points) best = std::min(best, p[0]);
    return std::max(0.0, reference[0] - best);
  }
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) { return a[0] < b[0]; });

  double volume = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double upper = (i + 1 < points.size()) ? points[i + 1][0] : reference[0];
    const double width = upper - points[i][0];
    if (width <= 0.0) continue;
    // Points with first objective <= points[i][0] contribute to this slab.
    std::vector<std::vector<double>> slab;
    slab.reserve(i + 1);
    for (std::size_t j = 0; j <= i; ++j) {
      slab.emplace_back(points[j].begin() + 1, points[j].end());
    }
    const std::vector<double> sub_ref(reference.begin() + 1, reference.end());
    volume += width * hso(std::move(slab), sub_ref);
  }
  return volume;
}

}  // namespace

double hypervolume(const std::vector<std::vector<double>>& points,
                   const std::vector<double>& reference) {
  if (reference.empty()) throw std::invalid_argument("hypervolume: empty reference");
  std::vector<std::vector<double>> usable;
  for (const auto& p : points) {
    if (p.size() != reference.size()) {
      throw std::invalid_argument("hypervolume: dimension mismatch");
    }
    bool inside = true;
    for (std::size_t k = 0; k < p.size(); ++k) {
      if (p[k] >= reference[k]) {
        inside = false;
        break;
      }
    }
    if (inside) usable.push_back(p);
  }
  // Keep only the non-dominated subset: dominated points change nothing but
  // inflate the recursion.
  std::vector<std::vector<double>> front;
  for (const auto& p : usable) {
    bool beaten = false;
    for (const auto& q : usable) {
      if (&p != &q && (dominates(q, p) || (q == p && &q < &p))) {
        beaten = true;
        break;
      }
    }
    if (!beaten) front.push_back(p);
  }
  return hso(std::move(front), reference);
}

}  // namespace lens::opt
