// Regional deployment planning (the paper's Table I workflow, §II-B):
// given an architecture you intend to ship, find its best edge-cloud
// deployment option for every target market's expected uplink throughput,
// across device capabilities and radio technologies.

#include <cstdio>

#include "core/accuracy.hpp"
#include "core/nas.hpp"
#include "core/plan.hpp"
#include "core/portfolio.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"

int main() {
  using namespace lens;

  // The model being shipped: classic AlexNet (swap in your own stack).
  const dnn::Architecture model = dnn::alexnet();
  std::printf("model: %s (%llu params, %.2f GFLOP, input %llu bytes)\n",
              model.name().c_str(), static_cast<unsigned long long>(model.total_params()),
              static_cast<double>(model.total_flops()) / 1e9,
              static_cast<unsigned long long>(model.input_bytes()));

  // Edge devices under consideration.
  perf::DeviceSimulator gpu(perf::jetson_tx2_gpu());
  perf::DeviceSimulator cpu(perf::jetson_tx2_cpu());
  const perf::RooflinePredictor gpu_predictor =
      perf::RooflinePredictor::train(gpu, {.samples_per_kind = 400, .seed = 2});
  const perf::RooflinePredictor cpu_predictor =
      perf::RooflinePredictor::train(cpu, {.samples_per_kind = 400, .seed = 3});

  // Target markets: OpenSignal-style average user upload throughputs.
  struct Market {
    const char* name;
    double tu_mbps;
  };
  const Market markets[] = {
      {"S. Korea", 16.1}, {"Japan", 13.6},      {"Germany", 9.7},
      {"USA", 7.5},       {"Brazil", 5.3},      {"India", 3.1},
      {"Nigeria", 2.2},   {"Afghanistan", 0.7},
  };

  struct Rig {
    const char* label;
    const perf::LayerPerformanceModel* predictor;
    comm::WirelessTechnology technology;
  };
  const Rig rigs[] = {
      {"GPU/WiFi", &gpu_predictor, comm::WirelessTechnology::kWifi},
      {"CPU/LTE", &cpu_predictor, comm::WirelessTechnology::kLte},
      {"CPU/3G", &cpu_predictor, comm::WirelessTechnology::k3G},
  };

  for (const Rig& rig : rigs) {
    const comm::CommModel comm(rig.technology, 5.0);
    const core::DeploymentEvaluator evaluator(*rig.predictor, comm);
    // The per-layer predictors run once per rig; every market just re-prices
    // the compiled plan at its own uplink throughput.
    const core::DeploymentPlan plan = evaluator.compile(model);
    std::printf("\n=== %s ===\n", rig.label);
    std::printf("%-12s %6s | %-13s %9s | %-13s %9s\n", "market", "t_u", "latency split",
                "ms", "energy split", "mJ");
    for (const Market& market : markets) {
      const core::DeploymentEvaluation result = plan.price(market.tu_mbps);
      std::printf("%-12s %6.1f | %-13s %9.1f | %-13s %9.1f\n", market.name, market.tu_mbps,
                  result.latency_choice().label(model).c_str(), result.best_latency_ms(),
                  result.energy_choice().label(model).c_str(), result.best_energy_mj());
    }
  }

  std::printf("\ninterpretation: the same architecture should ship with different\n"
              "deployment configurations per region -- the paper's design-time argument.\n");

  // Going further: instead of shipping a fixed architecture, search once and
  // pick the frontier model whose *mean energy across all markets* is best,
  // under an accuracy bound (multi-region portfolio planning).
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(gpu_predictor, wifi);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;
  core::NasConfig nas_config;
  nas_config.mobo.num_initial = 12;
  nas_config.mobo.num_iterations = 24;
  nas_config.mobo.seed = 13;
  core::NasDriver driver(space, evaluator, accuracy, nas_config);
  const core::NasResult result = driver.run();

  std::vector<core::Region> regions;
  for (const Market& market : markets) regions.push_back({market.name, market.tu_mbps});
  core::PortfolioConfig portfolio_config;
  portfolio_config.objective = core::kEnergyObjective;
  portfolio_config.max_error_percent = 30.0;
  const core::PortfolioResult plan =
      core::plan_portfolio(result, space, evaluator, regions, portfolio_config);

  std::printf("\nportfolio pick (GPU/WiFi, mean energy, Err <= 30%%): %s "
              "(%.0f mJ on average)\n",
              plan.architecture_name.c_str(), plan.aggregate_cost);
  for (const core::RegionPlan& region_plan : plan.plans) {
    std::printf("  %-12s -> %-13s %7.1f mJ\n", region_plan.region.name.c_str(),
                region_plan.deployment_label.c_str(), region_plan.cost);
  }
  return 0;
}
