// Quickstart: the whole LENS pipeline in ~60 lines.
//
//   1. Stand up an edge device model and train layer-performance predictors.
//   2. Describe the wireless environment (technology + expected t_u).
//   3. Run a small multi-objective NAS over the paper's search space.
//   4. Print the Pareto-optimal architectures with their best deployments.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/accuracy.hpp"
#include "core/nas.hpp"
#include "perf/predictor.hpp"

int main() {
  using namespace lens;

  // 1. Edge device: TX2-class GPU. The simulator stands in for profiling a
  //    physical board; the predictors are what LENS actually queries.
  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(device, {.samples_per_kind = 400, .seed = 1});
  for (const auto& [kind, v] : predictor.validation()) {
    std::printf("predictor[%s]: held-out latency R^2 = %.3f, MAPE = %.1f%%\n",
                dnn::kind_name(kind).c_str(), v.latency_r2, v.latency_mape);
  }

  // 2. Wireless environment: WiFi uplink, 3 Mbps expected, 5 ms round trip.
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, /*round_trip_ms=*/5.0);
  const core::DeploymentEvaluator evaluator(predictor, wifi);

  // 3. Search the paper's VGG-derived space (Fig. 4) for architectures that
  //    jointly minimize test error, latency, and edge energy — each
  //    candidate scored under its best edge/cloud split (Algorithm 1).
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;  // 10-epoch CIFAR-10 surrogate
  core::NasConfig config;
  config.mobo.num_initial = 12;
  config.mobo.num_iterations = 30;  // paper uses 300; small for a demo
  config.mobo.seed = 7;
  config.tu_mbps = 3.0;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();

  // 4. Report the frontier.
  std::printf("\nexplored %zu candidates; Pareto frontier has %zu members:\n",
              result.history.size(), result.front.size());
  std::printf("%-14s %8s %10s %10s  %-14s %-14s\n", "architecture", "err (%)", "lat (ms)",
              "ene (mJ)", "latency split", "energy split");
  for (const opt::ParetoPoint& p : result.front.points()) {
    const core::EvaluatedCandidate& c = result.history[p.id];
    const dnn::Architecture arch = space.decode(c.genotype);
    std::printf("%-14s %8.1f %10.1f %10.1f  %-14s %-14s\n", c.name.c_str(),
                c.error_percent, c.latency_ms, c.energy_mj,
                c.deployment.latency_choice().label(arch).c_str(),
                c.deployment.energy_choice().label(arch).c_str());
  }
  return 0;
}
