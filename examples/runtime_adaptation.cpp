// Runtime adaptation (paper §IV-E and Fig. 5): take a deployed model,
// derive the t_u thresholds at which its preferred deployment flips, then
// watch the dynamic switcher follow a fluctuating LTE uplink.

#include <cstdio>

#include "comm/trace.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"

int main() {
  using namespace lens;

  const dnn::Architecture model = dnn::alexnet();
  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(device, {.samples_per_kind = 400, .seed = 5});
  // WiFi uplink: the radio's low idle coefficient is what makes AlexNet's
  // pool5 split worth taking on energy once t_u clears ~2 Mbps (Fig. 2).
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 10.0);
  const core::DeploymentEvaluator evaluator(predictor, wifi);

  // Design-time: compile the model once, then price the plan at a nominal
  // t_u just to pick the representative options (the curves themselves are
  // throughput-free).
  const core::DeploymentPlan plan = evaluator.compile(model);
  const core::DeploymentEvaluation evaluation = plan.price(10.0);
  std::vector<core::DeploymentOption> options = {
      evaluation.all_cloud(),
      evaluation.energy_choice().kind == core::DeploymentKind::kPartitioned
          ? evaluation.energy_choice()
          : evaluation.options[1],
      evaluation.all_edge(),
  };

  const runtime::DynamicDeployer deployer(options, wifi, runtime::OptimizeFor::kEnergy,
                                          0.05, 300.0);
  std::printf("energy-optimal deployment as a function of uplink throughput:\n");
  for (const runtime::DominanceInterval& iv : deployer.intervals()) {
    std::printf("  t_u in [%7.2f, %7.2f) Mbps -> %s\n", iv.tu_low, iv.tu_high,
                options[iv.option_index].label(model).c_str());
  }

  // Runtime: play a day's worth of 5-minute WiFi uplink samples through the
  // tracker-driven switcher.
  comm::TraceGeneratorConfig trace_config;
  trace_config.mean_mbps = 1.5;  // congested AP: straddles the switching threshold
  trace_config.sigma = 0.7;
  trace_config.correlation = 0.7;
  trace_config.seed = 11;
  comm::TraceGenerator generator(trace_config);
  const comm::ThroughputTrace trace = generator.generate(288, 300.0);  // 24 h

  const runtime::PlaybackResult dynamic = deployer.play_dynamic(trace);
  std::printf("\n24 h WiFi trace (mean %.1f Mbps): cumulative energy per policy\n",
              trace.mean_mbps());
  std::printf("  dynamic switching : %10.0f mJ\n", dynamic.total_cost);
  for (std::size_t i = 0; i < options.size(); ++i) {
    const runtime::PlaybackResult fixed = deployer.play_fixed(trace, i);
    std::printf("  fixed %-12s: %10.0f mJ (dynamic saves %+5.2f%%)\n",
                options[i].label(model).c_str(), fixed.total_cost,
                100.0 * (fixed.total_cost - dynamic.total_cost) / fixed.total_cost);
  }

  // A short excerpt of the switching behaviour.
  std::printf("\nfirst 12 samples:\n  %-8s %-10s %s\n", "t (min)", "t_u (Mbps)", "choice");
  for (std::size_t i = 0; i < 12; ++i) {
    std::printf("  %-8zu %-10.2f %s\n", i * 5, trace.samples_mbps[i],
                options[dynamic.chosen_option[i]].label(model).c_str());
  }
  return 0;
}
