// Serving simulation: pick a model from a LENS search with the knee-point
// rule, then put it under a realistic request stream with a fluctuating
// uplink and compare serving policies — the full design-time -> runtime ->
// system-level pipeline in one program.

#include <cstdio>

#include "core/analysis.hpp"
#include "core/nas.hpp"
#include "core/plan.hpp"
#include "dnn/summary.hpp"
#include "perf/predictor.hpp"
#include "sim/system.hpp"

int main() {
  using namespace lens;

  // Design time: small LENS search on the paper's space.
  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(device, {.samples_per_kind = 400, .seed = 3});
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor, wifi);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;
  core::NasConfig config;
  config.mobo.num_initial = 12;
  config.mobo.num_iterations = 28;
  config.mobo.seed = 19;
  config.tu_mbps = 8.0;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();

  // Model selection: the knee of the (error, latency, energy) front.
  const opt::ParetoPoint& knee = core::knee_point(result.front);
  const core::EvaluatedCandidate& model = result.history[knee.id];
  const dnn::Architecture arch = space.decode(model.genotype);
  std::printf("knee-point model %s: err %.1f%%, lat %.1f ms, ene %.1f mJ\n",
              model.name.c_str(), model.error_percent, model.latency_ms, model.energy_mj);
  std::printf("%s\n", dnn::signature(arch).c_str());
  // One compiled plan feeds every simulated serving configuration below.
  const core::DeploymentPlan plan = evaluator.compile(arch);

  // Runtime environment: correlated WiFi trace (1-second granularity so the
  // simulated transfers see realistic variation).
  comm::TraceGeneratorConfig trace_config;
  trace_config.mean_mbps = 8.0;
  trace_config.sigma = 0.5;
  trace_config.correlation = 0.8;
  trace_config.seed = 23;
  comm::TraceGenerator generator(trace_config);
  const comm::ThroughputTrace trace = generator.generate(600, 1.0);

  std::printf("\nserving 120 s of Poisson traffic at increasing request rates:\n");
  std::printf("%-8s | %-22s | %-22s\n", "req/s", "design-time option (P50/P99 ms)",
              "queue-aware (P50/P99 ms)");
  for (double rate : {5.0, 15.0, 30.0, 45.0}) {
    sim::SimStats fixed_stats;
    sim::SimStats dynamic_stats;
    {
      sim::SimConfig sim_config;
      sim_config.duration_s = 120.0;
      sim_config.arrival_rate_hz = rate;
      sim_config.policy = sim::DispatchPolicy::kFixed;
      sim_config.fixed_option = model.deployment.best_latency_option;
      sim::EdgeCloudSystem system(plan, trace, sim_config);
      fixed_stats = system.run();
    }
    {
      sim::SimConfig sim_config;
      sim_config.duration_s = 120.0;
      sim_config.arrival_rate_hz = rate;
      sim_config.policy = sim::DispatchPolicy::kQueueAware;
      sim::EdgeCloudSystem system(plan, trace, sim_config);
      dynamic_stats = system.run();
    }
    std::printf("%-8.0f | %9.0f / %-10.0f | %9.0f / %-10.0f\n", rate,
                fixed_stats.p50_latency_ms, fixed_stats.p99_latency_ms,
                dynamic_stats.p50_latency_ms, dynamic_stats.p99_latency_ms);
  }
  std::printf("\nthe queue-aware dispatcher spreads load across the edge accelerator and\n"
              "the radio as either queue builds up, holding the tail latency down at\n"
              "request rates where the fixed design-time option saturates.\n");
  return 0;
}
