// Fault tolerance: how a LENS deployment degrades — and recovers — when the
// edge-cloud hierarchy misbehaves. Three views of the same compiled plan:
//
//  1. design-time fault pricing (evaluate_under_faults): what each degraded
//     scenario costs and whether the option set can serve it at all,
//  2. a scripted cloud outage in the serving simulator: dynamic dispatch
//     with edge fallback rides through a 20-second blackout that a pinned
//     cloud path can only survive via timeouts, retries, and re-execution,
//  3. runtime trace playback with a FallbackPolicy: hold-last selection vs
//     the pessimistic floor across outage samples.

#include <cstdio>

#include "core/plan.hpp"
#include "core/robust.hpp"
#include "dnn/presets.hpp"
#include "perf/predictor.hpp"
#include "runtime/deployer.hpp"
#include "sim/system.hpp"

int main() {
  using namespace lens;

  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(device, {.samples_per_kind = 400, .seed = 3});
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor, wifi);
  const dnn::Architecture arch = dnn::alexnet();
  const core::DeploymentPlan plan = evaluator.compile(arch);
  const double tu = 10.0;
  const core::DeploymentEvaluation eval = plan.price(tu);

  // 1. Design-time: price the plan over the standard fault-scenario mix.
  const core::RobustDeploymentEvaluator robust(
      evaluator, core::ThroughputDistribution::from_samples({tu}));
  const core::FaultEvaluation priced =
      robust.evaluate_under_faults(plan, core::default_fault_scenarios(tu));
  std::printf("fault pricing for %s @ %.1f Mbps:\n", arch.name().c_str(), tu);
  for (const core::FaultScenarioOutcome& o : priced.outcomes) {
    std::printf("  %-15s p=%.2f -> %s (%.1f ms)\n", o.scenario.name.c_str(),
                o.scenario.probability,
                o.servable ? eval.options[o.best_option].label(arch).c_str()
                           : "UNSERVABLE",
                o.latency_ms);
  }
  std::printf("  availability %.0f%%, expected latency %.1f ms (%.2fx nominal)\n\n",
              100.0 * priced.availability, priced.expected_latency_ms,
              priced.degradation_ratio);

  // 2. Serving-time: a scripted cloud blackout over [10 s, 30 s). The same
  // seed and request stream hit both policies; only dispatch differs.
  comm::ThroughputTrace flat;
  flat.samples_mbps = {tu};
  flat.interval_s = 1000.0;
  sim::SimConfig base;
  base.duration_s = 60.0;
  base.arrival_rate_hz = 10.0;
  base.faults.scripted.push_back(
      {sim::FaultClass::kCloudOutage, /*start_s=*/10.0, /*end_s=*/30.0, 0.0});

  std::size_t cloud_option = eval.best_latency_option;
  for (std::size_t i = 0; i < eval.options.size(); ++i) {
    if (eval.options[i].tx_bytes > 0 &&
        (eval.options[cloud_option].tx_bytes == 0 ||
         eval.options[i].latency_ms < eval.options[cloud_option].latency_ms)) {
      cloud_option = i;
    }
  }

  std::printf("20 s cloud blackout under 10 req/s:\n");
  {
    sim::SimConfig config = base;
    config.policy = sim::DispatchPolicy::kDynamic;
    sim::EdgeCloudSystem system(plan, flat, config);
    const sim::SimStats stats = system.run();
    std::printf("  dynamic+fallback: avail %.1f%%, mean %.1f ms, timeouts %zu\n",
                100.0 * stats.availability, stats.mean_latency_ms, stats.timeouts);
  }
  {
    sim::SimConfig config = base;
    config.policy = sim::DispatchPolicy::kFixed;
    config.fixed_option = cloud_option;
    sim::EdgeCloudSystem system(plan, flat, config);
    const sim::SimStats stats = system.run();
    std::printf("  fixed cloud-path: avail %.1f%%, mean %.1f ms, timeouts %zu, "
                "retries %zu, fallbacks %zu\n\n",
                100.0 * stats.availability, stats.mean_latency_ms, stats.timeouts,
                stats.retries, stats.fallback_executions);
  }

  // 3. Runtime playback: the same faded trace under both outage policies.
  // Hold-last keeps selecting near the pre-outage estimate (decaying toward
  // the floor); the pessimistic floor jumps straight to the worst-case
  // option on the first bad sample.
  comm::ThroughputTrace faded;
  faded.interval_s = 1.0;
  for (int i = 0; i < 20; ++i) faded.samples_mbps.push_back(8.0);
  for (int i = 0; i < 6; ++i) faded.samples_mbps.push_back(0.0);
  for (int i = 0; i < 20; ++i) faded.samples_mbps.push_back(8.0);

  const runtime::DynamicDeployer deployer(plan, runtime::OptimizeFor::kEnergy);
  runtime::FallbackPolicy hold;
  hold.on_outage = runtime::FallbackPolicy::OnOutage::kHoldLast;
  const runtime::PlaybackResult floor_run = deployer.play_dynamic(faded, 0.7, 0.05);
  const runtime::PlaybackResult hold_run = deployer.play_dynamic(faded, 0.7, 0.05, hold);
  std::printf("6-sample outage in a 46-sample trace (energy metric):\n");
  std::printf("  pessimistic floor: cost %.1f mJ, %zu switches, %zu outage samples\n",
              floor_run.total_cost, floor_run.option_switches, floor_run.outages);
  std::printf("  hold-last decay:   cost %.1f mJ, %zu switches, %zu outage samples\n",
              hold_run.total_cost, hold_run.option_switches, hold_run.outages);
  std::printf("\nedge fallback turns cloud faults into a latency tax instead of dropped\n"
              "requests; the fallback policy controls how eagerly the runtime re-stages\n"
              "weights when the link flickers.\n");
  return 0;
}
