// Memory-constrained deployment: edge devices rarely have room for a full
// model's weights. This example sweeps the edge memory budget and shows how
// the feasible deployment-option set — and the best achievable latency /
// energy — degrades gracefully toward All-Cloud, and how partitioning lets
// a device that cannot hold the full model still do useful local work.

#include <cstdio>

#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "dnn/presets.hpp"
#include "dnn/summary.hpp"
#include "perf/predictor.hpp"

int main() {
  using namespace lens;

  const dnn::Architecture model = dnn::alexnet();
  std::printf("%s", dnn::summary(model).c_str());

  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(device, {.samples_per_kind = 400, .seed = 9});
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const double tu = 8.0;

  std::printf("\nedge memory budget sweep @ %.0f Mbps WiFi:\n", tu);
  std::printf("%-12s %9s %-14s %10s | %-14s %10s\n", "budget", "#options", "latency best",
              "ms", "energy best", "mJ");
  const std::uint64_t mb = 1ULL << 20;
  const std::uint64_t budgets[] = {0 /*unlimited*/, 512 * mb, 256 * mb, 64 * mb,
                                   16 * mb,         4 * mb,   64 * 1024};
  for (std::uint64_t budget : budgets) {
    core::EvaluatorConfig config;
    config.edge_memory_budget_bytes = budget;
    const core::DeploymentEvaluator evaluator(predictor, wifi, config);
    const core::DeploymentEvaluation eval = evaluator.compile(model).price(tu);
    char label[32];
    if (budget == 0) {
      std::snprintf(label, sizeof label, "unlimited");
    } else if (budget >= mb) {
      std::snprintf(label, sizeof label, "%llu MB",
                    static_cast<unsigned long long>(budget / mb));
    } else {
      std::snprintf(label, sizeof label, "%llu kB",
                    static_cast<unsigned long long>(budget / 1024));
    }
    std::printf("%-12s %9zu %-14s %10.1f | %-14s %10.1f\n", label, eval.options.size(),
                eval.latency_choice().label(model).c_str(), eval.best_latency_ms(),
                eval.energy_choice().label(model).c_str(), eval.best_energy_mj());
  }

  std::printf("\nnote: AlexNet carries ~244 MB of fp32 weights, ~94%% of them in the FC\n"
              "layers. A 64 MB device cannot run All-Edge, but the pool5 split keeps the\n"
              "15 MB conv trunk local -- partitioning is also a memory-fit mechanism.\n");
  return 0;
}
