// Real end-to-end training of a search-space candidate (the paper's actual
// accuracy pipeline, at laptop scale): sample a genotype from a small
// search space, decode it against a 16x16 training input, train it from
// scratch on the procedural ShapeSet dataset, and report test error —
// then contrast with the fast surrogate the big searches use.

#include <cstdio>
#include <random>

#include "core/accuracy.hpp"
#include "core/trained_accuracy.hpp"
#include "nn/builder.hpp"
#include "nn/dataset.hpp"

int main() {
  using namespace lens;

  // A training-friendly slice of the paper's search space: 3 blocks,
  // narrow filters, 16x16 inputs.
  core::SearchSpaceConfig space_config;
  space_config.input = {16, 16, 3};
  space_config.num_blocks = 3;
  space_config.depths = {1, 2};
  space_config.kernels = {3, 5};
  space_config.filters = {8, 12, 16};
  space_config.fc_units = {32, 64};
  space_config.min_pools = 2;
  const core::SearchSpace space(space_config);

  std::mt19937_64 rng(2024);
  const core::Genotype genotype = space.random(rng);
  const dnn::Architecture arch = space.decode(genotype);
  std::printf("candidate %s: %zu layers, %llu params\n", arch.name().c_str(),
              arch.num_layers(), static_cast<unsigned long long>(arch.total_params()));
  for (const dnn::LayerInfo& info : arch.layers()) {
    std::printf("  %-7s %3dx%-3dx%-4d -> %3dx%-3dx%-4d\n", info.name.c_str(),
                info.input.height, info.input.width, info.input.channels,
                info.output.height, info.output.width, info.output.channels);
  }

  // Train it for real: 1024 ShapeSet images, a few epochs.
  nn::ShapeSet dataset({.image_size = 16, .num_classes = 10, .seed = 1});
  const nn::LabeledData train = dataset.generate(1024);
  const nn::LabeledData test = dataset.generate(256);
  nn::Sequential network = nn::build_network(arch, rng);
  nn::Trainer trainer(network, {.sgd = {.learning_rate = 0.01}, .batch_size = 32});
  std::printf("\ntraining on %zu images (%zu held out):\n", train.size(), test.size());
  for (int epoch = 0; epoch < 6; ++epoch) {
    const nn::EpochStats stats = trainer.train_epoch(train);
    const nn::EpochStats eval = trainer.evaluate(test);
    std::printf("  epoch %d: train loss %.3f acc %.1f%% | test err %.1f%%\n", epoch,
                stats.mean_loss, 100.0 * stats.accuracy, eval.error_percent());
  }
  const double trained_error = trainer.evaluate(test).error_percent();

  // The same objective through the reusable evaluator wrapper...
  core::TrainedAccuracyConfig eval_config;
  eval_config.train_samples = 1024;
  eval_config.test_samples = 256;
  eval_config.epochs = 6;
  const core::TrainedAccuracyEvaluator trained_eval(space, eval_config);
  const double wrapped_error = trained_eval.test_error_percent(genotype, arch);

  // ...and the surrogate used by the 300-iteration searches.
  const core::SurrogateAccuracyModel surrogate;
  const double surrogate_error = surrogate.test_error_percent(genotype, arch);

  std::printf("\ntest error: trained here %.1f%% | TrainedAccuracyEvaluator %.1f%% | "
              "surrogate (CIFAR-10-band) %.1f%%\n",
              trained_error, wrapped_error, surrogate_error);
  std::printf("note: the surrogate is calibrated to 10-epoch CIFAR-10 error levels, not\n"
              "ShapeSet; both provide the ranking signal the search needs.\n");
  return 0;
}
