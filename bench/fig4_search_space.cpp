// Fig. 4 reproduction: the experimental search space. Prints the dimension
// grid, the space's cardinality, the >=4-pools constraint's acceptance
// rate, and a few sampled architectures, reproducing the figure textually.

#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/search_space.hpp"
#include "dnn/summary.hpp"

int main() {
  using namespace lens;
  const core::SearchSpace space;
  const core::SearchSpaceConfig& config = space.config();

  bench::heading("Fig. 4 -- the VGG-derived experimental search space");
  std::printf("input (performance objectives): %dx%dx%d | classes: %d\n",
              config.input.height, config.input.width, config.input.channels,
              config.num_classes);
  std::printf("%d convolutional blocks, each with:\n", config.num_blocks);
  auto print_list = [](const char* label, const std::vector<int>& values) {
    std::printf("  %-18s {", label);
    for (std::size_t i = 0; i < values.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", values[i]);
    }
    std::printf("}\n");
  };
  print_list("layers per block", config.depths);
  print_list("kernel size", config.kernels);
  print_list("filters", config.filters);
  std::printf("  %-18s optional 2x2, stride 2\n", "max-pool");
  print_list("FC units (fc1, optional fc2)", config.fc_units);
  std::printf("constraint: >= %d pooling layers per architecture\n", config.min_pools);
  std::printf("genotype: %zu dimensions, 10^%.1f raw combinations\n",
              space.num_dimensions(), space.log10_size());

  // Constraint acceptance rate of unconstrained sampling.
  std::mt19937_64 rng(5);
  int accepted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    core::Genotype g(space.num_dimensions());
    for (std::size_t d = 0; d < g.size(); ++d) {
      std::uniform_int_distribution<int> dist(0, space.cardinalities()[d] - 1);
      g[d] = dist(rng);
    }
    if (space.is_valid(g)) ++accepted;
  }
  std::printf("constraint acceptance rate: %.1f%% of raw samples\n",
              100.0 * accepted / trials);

  bench::heading("Three sampled members");
  for (int i = 0; i < 3; ++i) {
    const core::Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    std::printf("%s\n  %s\n", arch.name().c_str(), dnn::signature(arch).c_str());
    std::printf("  %.2f GFLOP, %llu params, %zu viable split points\n\n",
                static_cast<double>(arch.total_flops()) / 1e9,
                static_cast<unsigned long long>(arch.total_params()),
                arch.partition_candidates().size());
  }
  return 0;
}
