// Table II reproduction: qualitative feature comparison of LENS against
// Neurosurgeon (NS), SIEVE, and the input-dependent RNN mapping work —
// cross-referenced against what this repository actually implements.

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using lens::bench::heading;
  using lens::bench::rule;

  heading("Table II -- supported features for DNN optimization in edge-cloud hierarchies");
  struct Row {
    const char* feature;
    const char* lens;
    const char* ns;
    const char* sieve;
    const char* rnn;
    const char* where;  // where this repo implements the LENS column
  };
  const Row rows[] = {
      {"Design automation", "yes", "-", "yes", "-", "core::NasDriver (Alg. 2)"},
      {"NAS support", "yes", "-", "-", "-", "core::SearchSpace + opt::MoboEngine"},
      {"Wireless expectancy at design time", "yes", "-", "-", "-",
       "core::DeploymentEvaluator(t_u)"},
      {"Multi-objective optimization", "yes", "-", "yes", "-",
       "opt::MoboEngine (3 objectives)"},
      {"Runtime optimization", "yes", "yes", "yes", "yes",
       "runtime::DynamicDeployer"},
      {"E-C layer partitioning", "yes", "yes", "-", "-",
       "Alg. 1 split-point scan"},
      {"Compression", "-", "-", "yes", "-", "(out of scope, as in the paper)"},
      {"Hardware optimization", "-", "-", "yes", "-", "(out of scope, as in the paper)"},
  };
  std::printf("%-36s %-6s %-6s %-7s %-5s %s\n", "feature", "LENS", "NS[3]", "SIEVE[1]",
              "RNN[2]", "implemented by");
  rule(110);
  for (const Row& row : rows) {
    std::printf("%-36s %-6s %-6s %-7s %-5s %s\n", row.feature, row.lens, row.ns, row.sieve,
                row.rnn, row.where);
  }
  rule(110);
  std::printf("all LENS-column features are exercised by the test suite and benches.\n");
  return 0;
}
