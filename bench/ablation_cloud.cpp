// Ablation (extension): the paper's "cloud is infinite, L_cloud ~ 0"
// assumption (§III-A), and sensitivity to the round-trip latency L_RT.
//
// Sweeps (a) the cloud device class behind the offload and (b) the measured
// RTT, reporting how AlexNet's latency-optimal deployment moves. The paper's
// assumption is validated for datacenter-class clouds at LAN-like RTTs and
// shown to break for weak clouds or long RTTs.

#include <cstdio>

#include "bench_common.hpp"
#include "dnn/presets.hpp"

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator edge_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator dc_sim(perf::datacenter_gpu());
  perf::DeviceSimulator weak_sim(perf::jetson_tx2_gpu());   // "cloud" = another TX2
  perf::DeviceSimulator tiny_sim(perf::embedded_cpu());     // pathological cloud
  const perf::SimulatorOracle edge(edge_sim);
  const perf::SimulatorOracle datacenter(dc_sim);
  const perf::SimulatorOracle weak(weak_sim);
  const perf::SimulatorOracle tiny(tiny_sim);

  struct CloudArm {
    const char* label;
    const perf::LayerPerformanceModel* model;  // nullptr = paper's assumption
  };
  const CloudArm clouds[] = {
      {"infinite (paper)", nullptr},
      {"datacenter GPU", &datacenter},
      {"TX2-class cloud", &weak},
      {"embedded-CPU cloud", &tiny},
  };

  bench::heading("Ablation -- cloud compute model (AlexNet latency, WiFi @ 30 Mbps, RTT 5 ms)");
  std::printf("%-20s %-14s %12s %16s\n", "cloud", "latency best", "best (ms)",
              "All-Cloud (ms)");
  for (const CloudArm& arm : clouds) {
    core::EvaluatorConfig config;
    config.cloud_model = arm.model;
    const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
    const core::DeploymentEvaluator evaluator(edge, wifi, config);
    const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 30.0);
    std::printf("%-20s %-14s %12.1f %16.1f\n", arm.label,
                eval.latency_choice().label(alexnet).c_str(), eval.best_latency_ms(),
                eval.all_cloud().latency_ms);
  }

  bench::heading("Ablation -- round-trip latency (AlexNet latency, datacenter cloud, 30 Mbps)");
  std::printf("%-12s %-14s %12s\n", "RTT (ms)", "latency best", "best (ms)");
  for (double rtt : {1.0, 5.0, 20.0, 50.0, 150.0}) {
    core::EvaluatorConfig config;
    config.cloud_model = &datacenter;
    const comm::CommModel wifi(comm::WirelessTechnology::kWifi, rtt);
    const core::DeploymentEvaluator evaluator(edge, wifi, config);
    const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 30.0);
    std::printf("%-12.0f %-14s %12.1f\n", rtt, eval.latency_choice().label(alexnet).c_str(),
                eval.best_latency_ms());
  }
  bench::rule();
  std::printf("takeaway: AlexNet's 30 Mbps latency crossover (Fig. 2) is razor-thin --\n"
              "~0.6 ms wide -- so even a datacenter cloud's ~1.6 ms suffix or a few ms of\n"
              "extra RTT flips it back to All-Edge. The paper's L_cloud ~ 0 assumption is\n"
              "safe for its *energy* results (cloud energy is never billed to the edge)\n"
              "but the latency-side crossovers should be read with the path RTT in mind.\n");
  return 0;
}
