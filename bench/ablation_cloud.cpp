// Ablation (extension): the paper's "cloud is infinite, L_cloud ~ 0"
// assumption (§III-A), and sensitivity to the round-trip latency L_RT.
//
// Sweeps (a) the cloud device class behind the offload and (b) the measured
// RTT, reporting how AlexNet's latency-optimal deployment moves. The paper's
// assumption is validated for datacenter-class clouds at LAN-like RTTs and
// shown to break for weak clouds or long RTTs.

#include <cstddef>
#include <cstdio>

#include "bench_common.hpp"
#include "cloud/machine.hpp"
#include "comm/trace.hpp"
#include "dnn/presets.hpp"
#include "sim/system.hpp"

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator edge_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator dc_sim(perf::datacenter_gpu());
  perf::DeviceSimulator weak_sim(perf::jetson_tx2_gpu());   // "cloud" = another TX2
  perf::DeviceSimulator tiny_sim(perf::embedded_cpu());     // pathological cloud
  const perf::SimulatorOracle edge(edge_sim);
  const perf::SimulatorOracle datacenter(dc_sim);
  const perf::SimulatorOracle weak(weak_sim);
  const perf::SimulatorOracle tiny(tiny_sim);

  struct CloudArm {
    const char* label;
    const perf::LayerPerformanceModel* model;  // nullptr = paper's assumption
  };
  const CloudArm clouds[] = {
      {"infinite (paper)", nullptr},
      {"datacenter GPU", &datacenter},
      {"TX2-class cloud", &weak},
      {"embedded-CPU cloud", &tiny},
  };

  bench::heading("Ablation -- cloud compute model (AlexNet latency, WiFi @ 30 Mbps, RTT 5 ms)");
  std::printf("%-20s %-14s %12s %16s\n", "cloud", "latency best", "best (ms)",
              "All-Cloud (ms)");
  for (const CloudArm& arm : clouds) {
    core::EvaluatorConfig config;
    config.cloud_model = arm.model;
    const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
    const core::DeploymentEvaluator evaluator(edge, wifi, config);
    const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 30.0);
    std::printf("%-20s %-14s %12.1f %16.1f\n", arm.label,
                eval.latency_choice().label(alexnet).c_str(), eval.best_latency_ms(),
                eval.all_cloud().latency_ms);
  }

  bench::heading("Ablation -- round-trip latency (AlexNet latency, datacenter cloud, 30 Mbps)");
  std::printf("%-12s %-14s %12s\n", "RTT (ms)", "latency best", "best (ms)");
  for (double rtt : {1.0, 5.0, 20.0, 50.0, 150.0}) {
    core::EvaluatorConfig config;
    config.cloud_model = &datacenter;
    const comm::CommModel wifi(comm::WirelessTechnology::kWifi, rtt);
    const core::DeploymentEvaluator evaluator(edge, wifi, config);
    const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 30.0);
    std::printf("%-12.0f %-14s %12.1f\n", rtt, eval.latency_choice().label(alexnet).c_str(),
                eval.best_latency_ms());
  }
  // Extension: the assumption above is about cloud *speed*; this section is
  // about cloud *size*. A finite machine pool serves the same deployment
  // under Poisson load — as the pool shrinks, queueing wait creeps into the
  // served latency and admission control starts shedding to the edge
  // fallback. The "infinite (paper)" row is the frozen legacy path (no
  // CloudConfig at all), bit-identical to what this ablation always printed.
  bench::heading("Ablation -- finite cloud pool (AlexNet @ 10 Mbps, 10 req/s, datacenter cloud)");
  {
    core::EvaluatorConfig ecfg;
    ecfg.cloud_model = &datacenter;
    const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
    const core::DeploymentEvaluator evaluator(edge, wifi, ecfg);
    const core::DeploymentPlan plan = evaluator.compile(alexnet);
    const core::DeploymentEvaluation eval = plan.price(10.0);
    // Pin the fastest transmitting option: the pool must actually serve it.
    std::size_t pinned = eval.options.size();
    for (std::size_t i = 0; i < eval.options.size(); ++i) {
      if (eval.options[i].tx_bytes == 0) continue;
      if (pinned == eval.options.size() ||
          eval.options[i].latency_ms < eval.options[pinned].latency_ms) {
        pinned = i;
      }
    }

    struct PoolArm {
      const char* label;
      std::size_t machines;       // 0 = the paper's infinite cloud
      double capacity_ms_per_s;
      std::size_t breaker_failures;
    };
    const PoolArm pools[] = {
        {"infinite (paper)", 0, 0.0, 0},
        {"64 x real-time", 64, 1000.0, 0},
        {"1 x 1/50 speed", 1, 20.0, 0},
        {"1 x 1/3333 (overrun)", 1, 0.3, 0},
        {"overrun + breaker", 1, 0.3, 2},
    };

    comm::ThroughputTrace flat;
    flat.samples_mbps = {10.0};
    flat.interval_s = 1000.0;

    std::printf("%-20s %10s %10s %8s %10s %10s\n", "pool", "mean (ms)", "p99 (ms)",
                "shed", "fallbacks", "dc E (J)");
    for (const PoolArm& arm : pools) {
      sim::SimConfig scfg;
      scfg.duration_s = 30.0;
      scfg.arrival_rate_hz = 10.0;
      scfg.policy = sim::DispatchPolicy::kFixed;
      scfg.fixed_option = pinned;
      if (arm.machines > 0) {
        cloud::CloudConfig pool;
        pool.machines = arm.machines;
        pool.machine.capacity_ms_per_s = arm.capacity_ms_per_s;
        scfg.cloud = pool;
      }
      scfg.breaker_failures = arm.breaker_failures;
      sim::EdgeCloudSystem system(eval.options, wifi, flat, scfg);
      const sim::SimStats stats = system.run();
      std::printf("%-20s %10.1f %10.1f %8zu %10zu %10.1f\n", arm.label,
                  stats.mean_latency_ms, stats.p99_latency_ms, stats.shed,
                  stats.fallback_executions, stats.datacenter_energy_j);
    }
  }

  bench::rule();
  std::printf("takeaway: AlexNet's 30 Mbps latency crossover (Fig. 2) is razor-thin --\n"
              "~0.6 ms wide -- so even a datacenter cloud's ~1.6 ms suffix or a few ms of\n"
              "extra RTT flips it back to All-Edge. The paper's L_cloud ~ 0 assumption is\n"
              "safe for its *energy* results (cloud energy is never billed to the edge)\n"
              "but the latency-side crossovers should be read with the path RTT in mind.\n"
              "The pool table adds the *size* axis: a right-sized pool only shifts the\n"
              "mean by its service time, but an overrun pool plus naive retries congests\n"
              "the uplink into second-scale tails -- the circuit breaker's fast-fail to\n"
              "the edge fallback is what restores a bounded latency ceiling.\n");
  return 0;
}
