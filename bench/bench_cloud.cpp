// Finite-cloud placement-policy duel under fleet load: one fixed fleet
// scenario (vgg16 suffixes offered by ~20k devices) served by a bounded
// machine pool that loses 60% of its capacity to a scripted regional
// brownout across the middle third of the run. Both placement policies run
// on the identical scenario; the pool is homogeneous, so admission (and
// therefore the shed rate and every latency column) must match exactly and
// the policies may differ only in the datacenter power bill.
//
// BENCH_cloud.json records per-policy shed rate, SLA-violation rate, tail
// latencies, queueing wait, machines active, and datacenter energy;
// tools/check_cloud_bench.py gates energy-aware best-fit to no more energy
// than greedy first-fit at equal shed rate.

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cloud/machine.hpp"
#include "dnn/presets.hpp"
#include "fleet/fleet.hpp"
#include "sim/fault.hpp"

namespace {

lens::fleet::FleetConfig cloud_scenario(std::size_t devices, std::size_t steps) {
  lens::fleet::FleetConfig config;
  config.devices = devices;
  config.steps = steps;
  config.step_s = 60.0;
  config.seed = 33;
  config.trace.mean_mbps = 10.0;
  config.trace.sigma = 0.3;
  config.sla_ms = 300.0;
  config.cloud_faults.seed = 33;
  // Regional brownout: 60% of per-machine capacity gone for the middle
  // third of the horizon.
  const double horizon_s = static_cast<double>(steps) * config.step_s;
  config.cloud_faults.scripted.push_back({lens::sim::FaultClass::kRegionalBrownout,
                                          horizon_s / 3.0, 2.0 * horizon_s / 3.0,
                                          0.6});
  return config;
}

}  // namespace

int main() {
  lens::bench::heading("Finite-cloud placement duel (greedy vs energy best-fit)");
  const bool fast = lens::bench::fast_mode();

  const lens::bench::Testbed rig = lens::bench::Testbed::gpu_wifi();
  // vgg16 at 10 Mbps makes All-Cloud the latency winner, so the fleet
  // genuinely leans on the pool (alexnet mostly stays on the edge).
  const lens::core::DeploymentPlan plan = rig.evaluator.compile(lens::dnn::vgg16());

  const std::size_t devices = fast ? 5000 : 20000;
  const std::size_t steps = fast ? 24 : 48;
  lens::fleet::FleetConfig config = cloud_scenario(devices, steps);

  lens::cloud::CloudConfig pool;
  pool.machines = fast ? 4 : 16;
  pool.machine.capacity_ms_per_s = 4000.0;
  pool.admit_utilization = 0.85;

  lens::bench::JsonEmitter json("bench_cloud");
  json.add("config", {{"devices", static_cast<double>(devices)},
                      {"steps", static_cast<double>(steps)},
                      {"machines", static_cast<double>(pool.machines)},
                      {"capacity_ms_per_s", pool.machine.capacity_ms_per_s},
                      {"brownout_magnitude", 0.6},
                      {"sla_ms", config.sla_ms},
                      {"fast_mode", fast ? 1.0 : 0.0}});

  std::printf("%zu devices x %zu steps; pool of %zu machines, brownout -60%%\n\n",
              devices, steps, pool.machines);
  std::printf("%-17s %7s %9s %9s %9s %9s %8s %11s\n", "policy", "shed%", "sla-viol%",
              "p99(ms)", "p999(ms)", "wait(ms)", "active", "energy(kJ)");

  const lens::cloud::PlacementPolicy policies[2] = {
      lens::cloud::PlacementPolicy::kGreedyFirstFit,
      lens::cloud::PlacementPolicy::kEnergyBestFit};
  for (const lens::cloud::PlacementPolicy policy : policies) {
    pool.policy = policy;
    config.cloud = pool;
    lens::fleet::FleetEngine engine(plan, config);
    const lens::fleet::FleetStats stats = engine.run();
    const char* name = lens::cloud::placement_policy_name(policy);
    std::printf("%-17s %7.2f %9.2f %9.2f %9.2f %9.2f %8.1f %11.1f\n", name,
                100.0 * stats.shed_rate, 100.0 * stats.sla_violation_rate,
                stats.p99_latency_ms, stats.p999_latency_ms, stats.mean_queue_wait_ms,
                stats.mean_machines_active, stats.datacenter_energy_j / 1e3);
    json.add(std::string("policy=") + name,
             {{"shed_rate", stats.shed_rate},
              {"shed", static_cast<double>(stats.shed)},
              {"sla_violation_rate", stats.sla_violation_rate},
              {"sla_violations", static_cast<double>(stats.sla_violations)},
              {"p99_latency_ms", stats.p99_latency_ms},
              {"p999_latency_ms", stats.p999_latency_ms},
              {"mean_queue_wait_ms", stats.mean_queue_wait_ms},
              {"mean_machines_active", stats.mean_machines_active},
              {"breaker_trips", static_cast<double>(stats.breaker_trips)},
              {"datacenter_energy_j", stats.datacenter_energy_j}});
  }

  if (!json.write("BENCH_cloud.json")) return 1;
  std::printf(
      "\n(the pool is homogeneous: both policies admit identically, so the\n"
      " shed / SLA / latency columns must match and only the energy column\n"
      " may differ -- tools/check_cloud_bench.py enforces exactly that)\n");
  return 0;
}
