// Fig. 8 reproduction (paper §V-C): runtime resilience of two LENS frontier
// models against throughput variability.
//
// Model A is optimized for energy (runtime options: best partition +
// All-Edge); model B for latency (best partition + All-Cloud). Pairwise
// thresholds are computed analytically (the paper's examples: partitioned
// beats All-Edge on energy above 6.77 Mbps for A; All-Cloud beats the
// partition on latency above 22.77 Mbps for B), then cumulative cost over
// an LTE throughput trace is compared for fixed options vs the dynamic
// tracker-driven switcher (paper gains: A +0.55%/+3.22%, B +3.46%/+40.21%).
//
// Model selection mirrors the paper: A and B are chosen from the frontier
// *because* their thresholds fall inside the throughput range the trace
// visits — that is what makes the runtime question interesting.

#include <cmath>
#include <cstdio>
#include <optional>

#include "bench_common.hpp"
#include "comm/trace.hpp"
#include "runtime/deployer.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace lens;

/// Crossover throughput of two options under a metric, if any.
std::optional<double> pair_threshold(const core::DeploymentOption& a,
                                     const core::DeploymentOption& b,
                                     const comm::CommModel& comm,
                                     runtime::OptimizeFor metric) {
  return runtime::crossover_tu(runtime::cost_curve(a, comm, metric),
                               runtime::cost_curve(b, comm, metric));
}

void run_model(const char* title, const std::string& name,
               const core::DeploymentOption& design_choice,
               const core::DeploymentOption& alternative, const comm::CommModel& comm,
               runtime::OptimizeFor metric, const comm::ThroughputTrace& trace) {
  bench::heading(title);
  const char* unit = metric == runtime::OptimizeFor::kEnergy ? "mJ" : "ms";

  const runtime::DynamicDeployer deployer({design_choice, alternative}, comm, metric, 0.05,
                                          500.0);
  std::printf("model %s | options: %s (design-time choice) vs %s\n", name.c_str(),
              core::deployment_kind_name(design_choice.kind).c_str(),
              core::deployment_kind_name(alternative.kind).c_str());
  if (const auto threshold = pair_threshold(design_choice, alternative, comm, metric)) {
    std::printf("analytic switching threshold: t_u = %.2f Mbps (paper's examples: "
                "6.77 / 22.77 Mbps)\n", *threshold);
  }
  std::printf("dominance intervals over t_u:\n");
  for (const runtime::DominanceInterval& iv : deployer.intervals()) {
    std::printf("  [%7.2f, %7.2f) Mbps -> %s\n", iv.tu_low, iv.tu_high,
                core::deployment_kind_name(deployer.options()[iv.option_index].kind).c_str());
  }

  const runtime::PlaybackResult dynamic = deployer.play_dynamic(trace);
  const runtime::PlaybackResult fixed_design = deployer.play_fixed(trace, 0);
  const runtime::PlaybackResult fixed_alt = deployer.play_fixed(trace, 1);

  std::printf("\ncumulative cost over %zu trace samples (every %.0f s):\n", trace.size(),
              trace.interval_s);
  std::printf("  dynamic switching : %10.1f %s\n", dynamic.total_cost, unit);
  std::printf("  fixed %-11s : %10.1f %s (dynamic gain %+5.2f%%)\n",
              core::deployment_kind_name(design_choice.kind).c_str(),
              fixed_design.total_cost, unit,
              100.0 * (fixed_design.total_cost - dynamic.total_cost) /
                  fixed_design.total_cost);
  std::printf("  fixed %-11s : %10.1f %s (dynamic gain %+5.2f%%)\n",
              core::deployment_kind_name(alternative.kind).c_str(), fixed_alt.total_cost,
              unit,
              100.0 * (fixed_alt.total_cost - dynamic.total_cost) / fixed_alt.total_cost);

  std::size_t switches = 0;
  for (std::size_t i = 1; i < dynamic.chosen_option.size(); ++i) {
    if (dynamic.chosen_option[i] != dynamic.chosen_option[i - 1]) ++switches;
  }
  std::printf("  option switches along the trace: %zu\n\n", switches);

  // The figure itself: cumulative cost over the trace per policy.
  auto cumulative_series = [&](const char* label, char glyph,
                               const runtime::PlaybackResult& playback) {
    viz::Series s{label, glyph, {}, {}};
    for (std::size_t i = 0; i < playback.cumulative_cost.size(); ++i) {
      s.x.push_back(static_cast<double>(i) * trace.interval_s / 60.0);  // minutes
      s.y.push_back(playback.cumulative_cost[i]);
    }
    return s;
  };
  viz::PlotConfig plot;
  plot.height = 14;
  plot.x_label = "trace time (min)";
  plot.y_label = unit;
  // Draw order matters for overlap: the dynamic curve hugs the better fixed
  // option, so it is drawn last to stay visible.
  std::fputs(viz::line_plot({cumulative_series("fixed alternative", 'a', fixed_alt),
                             cumulative_series("fixed design choice", 'f', fixed_design),
                             cumulative_series("dynamic", 'd', dynamic)},
                            plot)
                 .c_str(),
             stdout);
}

}  // namespace

int main() {
  using namespace lens;

  // Design-time rig: TX2 GPU with an LTE uplink, expected t_u = 12 Mbps —
  // the same environment the runtime traces are drawn from (the paper's
  // §V-C uses an LTE connection).
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::RooflinePredictor predictor =
      perf::RooflinePredictor::train(sim, {.samples_per_kind = 500, .seed = 11});
  const comm::CommModel lte(comm::WirelessTechnology::kLte, 10.0);
  const core::DeploymentEvaluator evaluator(predictor, lte);
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  core::NasConfig config;
  config.mobo.num_initial = 16;
  config.mobo.num_iterations = bench::fast_mode() ? 24 : 80;
  config.mobo.seed = 3;
  config.tu_mbps = 12.0;
  core::NasDriver driver(space, evaluator, accuracy, config);
  const core::NasResult result = driver.run();
  std::printf("LENS search done (%zu candidates, %zu frontier members)\n",
              result.history.size(), result.front.size());

  // LTE runtime traces: 40 samples every 5 minutes (TestMyNet substitute).
  comm::TraceGeneratorConfig trace_config;
  trace_config.mean_mbps = 12.0;
  trace_config.sigma = 0.6;
  trace_config.correlation = 0.65;
  trace_config.seed = 17;
  comm::TraceGenerator generator(trace_config);
  const comm::ThroughputTrace trace = generator.generate(40, 300.0);
  std::printf("LTE trace: mean %.1f Mbps, min %.1f, max %.1f\n", trace.mean_mbps(),
              trace.min_mbps(), trace.max_mbps());

  // Model A: frontier member whose (partition vs All-Edge) energy threshold
  // lies inside the trace's range -- runtime switching is live for it.
  // Model B: member whose (partition vs All-Cloud) latency threshold lies in
  // range. Fall back to the closest threshold when none lands inside.
  const double lo = trace.min_mbps();
  const double hi = trace.max_mbps();
  const core::EvaluatedCandidate* model_a = nullptr;
  core::DeploymentOption a_part, a_edge;
  double a_score = 1e300;
  const core::EvaluatedCandidate* model_b = nullptr;
  core::DeploymentOption b_part, b_cloud;
  double b_score = 1e300;

  auto centered_distance = [&](double threshold) {
    // 0 when inside [lo, hi]; distance outside otherwise (log domain).
    if (threshold >= lo && threshold <= hi) {
      return std::abs(std::log(threshold / trace.mean_mbps()));
    }
    return 10.0 + std::abs(std::log(threshold / trace.mean_mbps()));
  };

  for (const opt::ParetoPoint& p : result.front.points()) {
    const core::EvaluatedCandidate& c = result.history[p.id];
    for (const core::DeploymentOption& o : c.deployment.options) {
      if (o.kind != core::DeploymentKind::kPartitioned) continue;
      if (const auto t = pair_threshold(o, c.deployment.all_edge(), lte,
                                        runtime::OptimizeFor::kEnergy)) {
        const double score = centered_distance(*t);
        if (score < a_score) {
          a_score = score;
          model_a = &c;
          a_part = o;
          a_edge = c.deployment.all_edge();
        }
      }
      if (const auto t = pair_threshold(o, c.deployment.all_cloud(), lte,
                                        runtime::OptimizeFor::kLatency)) {
        const double score = centered_distance(*t);
        if (score < b_score) {
          b_score = score;
          model_b = &c;
          b_part = o;
          b_cloud = c.deployment.all_cloud();
        }
      }
    }
  }
  if (model_a == nullptr || model_b == nullptr) {
    std::printf("no frontier member exposes a live threshold; rerun with more "
                "iterations\n");
    return 1;
  }

  run_model("Fig. 8 (left) -- model A, energy", model_a->name, a_part, a_edge, lte,
            runtime::OptimizeFor::kEnergy, trace);
  run_model("Fig. 8 (right) -- model B, latency", model_b->name, b_part, b_cloud, lte,
            runtime::OptimizeFor::kLatency, trace);

  bench::heading("Takeaway");
  std::printf("dynamic switching adds a few %% over the design-time choice and a lot over\n"
              "the wrong fixed option -- the paper's argument that most of the efficiency\n"
              "is already captured by deploying each model per its design-time best.\n");
  return 0;
}
