// Fig. 6 reproduction (paper §V-A): LENS vs the Traditional solution.
//
// Both searches run the same MOBO budget over the same VGG-derived search
// space at the expected t_u = 3 Mbps; they differ only in whether Algorithm
// 1's best-deployment evaluation is inside the optimization (LENS) or the
// candidate is costed All-Edge (Traditional, i.e. platform-aware NAS for
// the edge device). The paper's headline numbers on the energy-error
// projection: LENS dominates 60% of the *partitioned* Traditional frontier,
// is dominated on 15.38% of its own, and forms 76.47% of the combined
// frontier (latency-error: 66.67% / 14.28% / 75%).

#include <cstdio>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "opt/hypervolume.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace lens;

void analyze_projection(const char* title, const core::NasResult& lens_result,
                        const core::NasResult& traditional_result,
                        core::Objective performance_objective) {
  using core::kErrorObjective;
  const opt::ParetoFront lens_front =
      front_2d(lens_result.history, kErrorObjective, performance_objective);
  const opt::ParetoFront trad_front = front_2d(traditional_result.history, kErrorObjective,
                                               performance_objective);
  const opt::ParetoFront trad_partitioned = repartition_front(
      trad_front, traditional_result.history, kErrorObjective, performance_objective);

  bench::heading(title);
  const char* unit = performance_objective == core::kEnergyObjective ? "mJ" : "ms";

  // The figure itself: explored candidates and the two frontiers.
  {
    viz::Series lens_points{"LENS explored", '.', {}, {}};
    viz::Series trad_points{"Traditional explored", ',', {}, {}};
    viz::Series lens_frontier{"LENS front", 'L', {}, {}};
    viz::Series trad_frontier{"Trad+part front", 'T', {}, {}};
    for (const core::EvaluatedCandidate& c : lens_result.history) {
      lens_points.x.push_back(c.error_percent);
      lens_points.y.push_back(core::objective_value(c, performance_objective,
                                                    core::DeploymentPolicy::kAsSearched));
    }
    for (const core::EvaluatedCandidate& c : traditional_result.history) {
      trad_points.x.push_back(c.error_percent);
      trad_points.y.push_back(core::objective_value(c, performance_objective,
                                                    core::DeploymentPolicy::kAsSearched));
    }
    for (const opt::ParetoPoint& p : lens_front.points()) {
      lens_frontier.x.push_back(p.objectives[0]);
      lens_frontier.y.push_back(p.objectives[1]);
    }
    for (const opt::ParetoPoint& p : trad_partitioned.points()) {
      trad_frontier.x.push_back(p.objectives[0]);
      trad_frontier.y.push_back(p.objectives[1]);
    }
    viz::PlotConfig plot;
    plot.x_label = "test error (%)";
    plot.y_label = performance_objective == core::kEnergyObjective ? "mJ" : "ms";
    plot.log_y = true;  // explored costs span decades
    std::fputs(
        viz::scatter_plot({lens_points, trad_points, trad_frontier, lens_frontier}, plot)
            .c_str(),
        stdout);
  }

  auto print_front = [&](const char* name, const opt::ParetoFront& front) {
    std::printf("%s frontier (%zu members): ", name, front.size());
    for (const opt::ParetoPoint& p : front.points()) {
      std::printf("(%.1f%%, %.0f%s) ", p.objectives[0], p.objectives[1], unit);
    }
    std::printf("\n");
  };
  print_front("LENS", lens_front);
  print_front("Traditional", trad_front);
  print_front("Traditional+partitioning", trad_partitioned);

  const core::FrontComparison raw = core::compare_fronts(lens_front, trad_front);
  const core::FrontComparison part = core::compare_fronts(lens_front, trad_partitioned);
  std::printf("\nLENS dominates raw Traditional frontier      : %5.1f%%\n",
              100.0 * raw.a_dominates_b);
  std::printf("LENS dominates partitioned Traditional       : %5.1f%%   (paper: %s)\n",
              100.0 * part.a_dominates_b,
              performance_objective == core::kEnergyObjective ? "60%" : "66.67%");
  std::printf("partitioned Traditional dominates LENS       : %5.1f%%   (paper: %s)\n",
              100.0 * part.b_dominates_a,
              performance_objective == core::kEnergyObjective ? "15.38%" : "14.28%");
  std::printf("combined frontier formed by LENS             : %5.1f%%   (paper: %s)\n",
              100.0 * part.combined.fraction_a,
              performance_objective == core::kEnergyObjective ? "76.47%" : "75%");

  // Hypervolume as an aggregate quality indicator (reference: worst corner
  // over both histories, padded 5%).
  double ref_error = 0.0;
  double ref_perf = 0.0;
  for (const auto* result : {&lens_result, &traditional_result}) {
    for (const core::EvaluatedCandidate& c : result->history) {
      ref_error = std::max(ref_error, c.error_percent);
      ref_perf = std::max(ref_perf, core::objective_value(c, performance_objective,
                                                          core::DeploymentPolicy::kAllEdge));
    }
  }
  const std::vector<double> reference = {1.05 * ref_error, 1.05 * ref_perf};
  auto points_of = [](const opt::ParetoFront& front) {
    std::vector<std::vector<double>> pts;
    for (const auto& p : front.points()) pts.push_back(p.objectives);
    return pts;
  };
  const double hv_lens = opt::hypervolume(points_of(lens_front), reference);
  const double hv_trad = opt::hypervolume(points_of(trad_partitioned), reference);
  std::printf("hypervolume: LENS %.3g vs partitioned Traditional %.3g (ratio %.2f)\n",
              hv_lens, hv_trad, hv_lens / hv_trad);
}

}  // namespace

int main() {
  using namespace lens;
  bench::Testbed testbed = bench::Testbed::gpu_wifi();
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  const unsigned seeds = bench::search_seeds();
  std::printf("search budget: %zu random + %zu MOBO iterations per method, %u seed(s)%s\n",
              bench::search_initial(), bench::search_iterations(), seeds,
              bench::fast_mode() ? " (LENS_BENCH_FAST)" : "");

  core::NasResult lens_result;
  core::NasResult traditional_result;
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    core::NasConfig lens_config;
    lens_config.mobo.num_initial = bench::search_initial();
    lens_config.mobo.num_iterations = bench::search_iterations();
    lens_config.mobo.seed = seed;
    lens_config.tu_mbps = 3.0;
    lens_config.mode = core::ObjectiveMode::kBestDeployment;
    core::NasConfig traditional_config = lens_config;
    traditional_config.mode = core::ObjectiveMode::kAllEdgeOnly;

    core::NasDriver lens(space, testbed.evaluator, accuracy, lens_config);
    const core::NasResult lens_run = lens.run();
    core::NasDriver traditional(space, testbed.evaluator, accuracy, traditional_config);
    const core::NasResult traditional_run = traditional.run();
    std::printf("seed %u done (%zu + %zu candidates)\n", seed, lens_run.history.size(),
                traditional_run.history.size());
    if (seed == 1) {
      lens_result = lens_run;
      traditional_result = traditional_run;
    } else {
      // Pool explored candidates across seeds (the paper reports one run;
      // pooling several makes the domination statistics less seed-bound).
      for (const core::EvaluatedCandidate& c : lens_run.history) {
        lens_result.front.insert(lens_result.history.size(), c.objectives());
        lens_result.history.push_back(c);
      }
      for (const core::EvaluatedCandidate& c : traditional_run.history) {
        traditional_result.front.insert(traditional_result.history.size(), c.objectives());
        traditional_result.history.push_back(c);
      }
    }
  }

  analyze_projection("Fig. 6 -- energy vs error projection", lens_result,
                     traditional_result, core::kEnergyObjective);
  analyze_projection("Fig. 6 (companion) -- latency vs error projection", lens_result,
                     traditional_result, core::kLatencyObjective);

  // The paper's qualitative observation ("no architecture with energy below
  // 207 mJ is identified" by Traditional): at a fixed accuracy level, the
  // Traditional search is blind to the energies partitioning can reach.
  auto accuracy_constrained_floor = [](const core::NasResult& result) {
    double floor = 1e300;
    for (const core::EvaluatedCandidate& c : result.history) {
      if (c.error_percent < 20.0) floor = std::min(floor, c.energy_mj);
    }
    return floor;
  };
  bench::heading("Qualitative check (energy floor among Err < 20% candidates)");
  std::printf("LENS (best-deployment objective)   : %.0f mJ\n",
              accuracy_constrained_floor(lens_result));
  std::printf("Traditional (All-Edge objective)   : %.0f mJ (blind to partitioning gains)\n",
              accuracy_constrained_floor(traditional_result));
  return 0;
}
