// Ablation: the search engine behind Algorithm 2.
//
// The paper builds on Dragonfly-style MOBO; this harness pits the MOBO
// engine against NSGA-II and pure random search on the full LENS problem
// under matched evaluation budgets, scoring by the hypervolume of the
// (error, energy) front across seeds.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "opt/hypervolume.hpp"

int main() {
  using namespace lens;
  bench::Testbed testbed = bench::Testbed::gpu_wifi();
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  const std::size_t budget = bench::fast_mode() ? 60 : 160;
  const unsigned seeds[] = {1, 2, 3};
  // Shared reference point for hypervolume (beyond any plausible candidate).
  const std::vector<double> reference = {70.0, 3000.0};

  struct Arm {
    const char* label;
    core::SearchStrategy strategy;
  };
  const Arm arms[] = {
      {"MOBO (paper)", core::SearchStrategy::kMobo},
      {"NSGA-II", core::SearchStrategy::kNsga2},
      {"Random", core::SearchStrategy::kRandom},
  };

  bench::heading("Ablation -- search strategy (budget " + std::to_string(budget) +
                 " evaluations, " + std::to_string(std::size(seeds)) + " seeds)");
  std::printf("%-14s %14s %14s %16s\n", "strategy", "mean HV", "min err seen",
              "min ene @err<25");

  for (const Arm& arm : arms) {
    double hv_sum = 0.0;
    double best_error = 1e300;
    double best_energy_at_25 = 1e300;
    for (unsigned seed : seeds) {
      core::NasConfig config;
      config.strategy = arm.strategy;
      config.mobo.num_initial = budget / 8;
      config.mobo.num_iterations = budget - budget / 8;
      config.mobo.seed = seed;
      config.nsga2.population = 20;
      config.nsga2.generations = budget / 20 - 1;
      config.nsga2.seed = seed;
      core::NasDriver driver(space, testbed.evaluator, accuracy, config);
      const core::NasResult result = driver.run();

      const opt::ParetoFront front =
          front_2d(result.history, core::kErrorObjective, core::kEnergyObjective);
      std::vector<std::vector<double>> points;
      for (const auto& p : front.points()) points.push_back(p.objectives);
      hv_sum += opt::hypervolume(points, reference);
      for (const core::EvaluatedCandidate& c : result.history) {
        best_error = std::min(best_error, c.error_percent);
        if (c.error_percent < 25.0) best_energy_at_25 = std::min(best_energy_at_25, c.energy_mj);
      }
    }
    std::printf("%-14s %14.0f %13.1f%% %14.0f mJ\n", arm.label,
                hv_sum / static_cast<double>(std::size(seeds)), best_error,
                best_energy_at_25);
  }
  bench::rule();
  std::printf("expectation: model-based MOBO >= NSGA-II > Random at NAS-scale budgets\n"
              "(hundreds of evaluations are few for a 23-dimensional space).\n");
  return 0;
}
