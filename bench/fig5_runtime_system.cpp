// Fig. 5 reproduction: the runtime system's three operating modes.
//
// The figure shows the same model deployed on both endpoints with layers
// "grayed out" depending on the mode (Partitioned / All-Edge / All-Cloud)
// chosen by the throughput tracker. This harness renders the per-layer
// placement for AlexNet's options and demonstrates the O(1) mode selection
// across tracked throughputs using a shipped switching table.

#include <cstdio>

#include "bench_common.hpp"
#include "dnn/presets.hpp"
#include "runtime/deployer.hpp"
#include "runtime/threshold_io.hpp"
#include "runtime/tracker.hpp"

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 10.0);

  bench::heading("Fig. 5 -- per-layer placement per operating mode (E=edge, C=cloud)");
  std::printf("%-14s", "mode");
  for (const dnn::LayerInfo& info : alexnet.layers()) {
    std::printf(" %-6s", info.name.c_str());
  }
  std::printf("\n");
  for (const core::DeploymentOption& option : eval.options) {
    std::printf("%-14s", option.label(alexnet).c_str());
    for (std::size_t i = 0; i < alexnet.num_layers(); ++i) {
      char place = 'E';
      if (option.kind == core::DeploymentKind::kAllCloud) {
        place = 'C';
      } else if (option.kind == core::DeploymentKind::kPartitioned &&
                 i > option.split_after.value()) {
        place = 'C';
      }
      std::printf(" %-6c", place);
    }
    std::printf("\n");
  }

  bench::heading("Throughput tracker driving O(1) mode switches (energy metric)");
  const runtime::DynamicDeployer deployer(eval.options, wifi,
                                          runtime::OptimizeFor::kEnergy, 0.05, 500.0);
  // The design-time artifact a device would ship with:
  runtime::SwitchingTable table;
  table.metric = runtime::OptimizeFor::kEnergy;
  for (const core::DeploymentOption& o : eval.options) {
    table.option_labels.push_back(o.label(alexnet));
  }
  table.intervals = deployer.intervals();
  std::printf("switching table (%zu intervals):\n", table.intervals.size());
  for (const runtime::DominanceInterval& iv : table.intervals) {
    std::printf("  [%7.2f, %7.2f) Mbps -> %s\n", iv.tu_low, iv.tu_high,
                table.option_labels[iv.option_index].c_str());
  }

  runtime::ThroughputTracker tracker(0.7);
  std::printf("\n%-10s %-12s %-14s\n", "sample", "tracked t_u", "mode");
  const double measurements[] = {12.0, 9.0, 3.0, 0.6, 0.4, 0.9, 5.0, 18.0};
  for (std::size_t i = 0; i < std::size(measurements); ++i) {
    tracker.report(measurements[i]);
    const std::size_t mode = table.select(tracker.estimate_mbps());
    std::printf("%-10zu %-12.2f %-14s\n", i, tracker.estimate_mbps(),
                table.option_labels[mode].c_str());
  }
  return 0;
}
