// Ablation (extension): point-estimate vs distribution-aware design-time
// deployment selection.
//
// The paper fixes the expected t_u to one number (3 Mbps). When the real
// throughput fluctuates, the option that is best *at the point estimate*
// can differ from the option with the best *expected* cost over the t_u
// distribution. This harness quantifies the regret of point-estimate design
// on trace playback, and the remaining gap to an ideal runtime switcher.

#include <cstdio>

#include "bench_common.hpp"
#include "comm/trace.hpp"
#include "core/robust.hpp"
#include "dnn/presets.hpp"
#include "par/substream.hpp"
#include "runtime/deployer.hpp"

int main() {
  using namespace lens;
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const dnn::Architecture model = dnn::alexnet();

  bench::heading("Ablation -- point-estimate vs distribution-aware deployment design");
  std::printf("%-30s %11s %11s | %10s %10s %10s %8s\n", "throughput environment",
              "E[point]", "E[robust]", "point", "robust", "dynamic", "regret");
  std::printf("%-30s %11s %11s | %10s %10s %10s %8s\n", "", "(analytic)", "(analytic)",
              "(played)", "(played)", "(played)", "");

  struct Environment {
    const char* label;
    double median_mbps;
    double sigma;
  };
  // AlexNet's energy threshold between All-Edge and split@pool5 on this rig
  // sits near ~1 Mbps. Costs are hyperbolic in t_u, so the risk lives in the
  // *slow* tail: with the median just above the threshold the point estimate
  // picks the split, while the expectation over a fat lower tail (E[1/t_u] >
  // 1/median) correctly prefers All-Edge — that gap is the regret.
  const Environment environments[] = {
      {"above thr, stable (1.3, .2)", 1.3, 0.2},
      {"above thr, volatile (1.3, .9)", 1.3, 0.9},
      {"above thr, wild (1.5, 1.2)", 1.5, 1.2},
      {"far above thr (3.0, .9)", 3.0, 0.9},
  };

  for (const Environment& env : environments) {
    // Design-time choices.
    const core::DeploymentEvaluation point_eval = evaluator.evaluate(model, env.median_mbps);
    const core::RobustDeploymentEvaluator robust_eval(
        evaluator, core::ThroughputDistribution::log_normal(env.median_mbps, env.sigma, 15));
    const core::RobustEvaluation robust = robust_eval.evaluate(model);

    const std::size_t point_choice = point_eval.best_energy_option;
    const std::size_t robust_choice = robust.energy.fixed_best_option;

    // Analytic expected cost of the point-estimate choice under the law.
    double point_expected = 0.0;
    {
      const core::DeploymentOption& o = point_eval.options[point_choice];
      for (std::size_t s = 0; s < robust_eval.distribution().tu_mbps.size(); ++s) {
        double cost = o.edge_energy_mj;
        if (o.tx_bytes > 0) {
          cost += wifi.tx_energy_mj(o.tx_bytes, robust_eval.distribution().tu_mbps[s]);
        }
        point_expected += robust_eval.distribution().weight[s] * cost;
      }
    }

    // Playback averaged over several trace realizations of the same law.
    const runtime::DynamicDeployer deployer(point_eval.options, wifi,
                                            runtime::OptimizeFor::kEnergy, 0.02, 2000.0);
    double point_cost = 0.0;
    double robust_cost = 0.0;
    double dynamic_cost = 0.0;
    const int replicas = 5;
    for (int replica = 0; replica < replicas; ++replica) {
      comm::TraceGeneratorConfig trace_config;
      trace_config.mean_mbps = env.median_mbps;
      trace_config.sigma = env.sigma;
      trace_config.correlation = 0.6;
      // Replica streams decorrelated through the splitmix64 finalizer
      // (adjacent-seed mt19937_64 streams start measurably correlated).
      trace_config.seed = static_cast<unsigned>(
          par::substream_seed(29, static_cast<std::uint64_t>(replica)));
      comm::TraceGenerator generator(trace_config);
      const comm::ThroughputTrace trace =
          generator.generate(bench::fast_mode() ? 200 : 800, 300.0);
      point_cost += deployer.play_fixed(trace, point_choice).total_cost;
      robust_cost += deployer.play_fixed(trace, robust_choice).total_cost;
      dynamic_cost += deployer.play_dynamic(trace, 1.0).total_cost;
    }
    point_cost /= replicas;
    robust_cost /= replicas;
    dynamic_cost /= replicas;
    std::printf("%-30s %11.1f %11.1f | %10.0f %10.0f %10.0f %7.2f%%\n", env.label,
                point_expected, robust.energy.expected_fixed_best, point_cost, robust_cost,
                dynamic_cost, 100.0 * (point_cost - robust_cost) / robust_cost);
  }
  bench::rule();
  std::printf("regret = extra energy of designing at the median only. Wider throughput\n"
              "spread -> larger benefit from distribution-aware (or dynamic) deployment;\n"
              "the switching headroom is itself a designable quantity (core::RobustMetric).\n");
  return 0;
}
