// Ablation: the acquisition function inside Algorithm 2's MOBO loop.
//
// The default is joint Thompson sampling with random augmented-Chebyshev
// scalarization (Dragonfly's family). This harness compares it against
// posterior-mean exploitation and LCB under matched budgets on the LENS
// problem, scored by (error, energy) front hypervolume across seeds.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/analysis.hpp"
#include "opt/hypervolume.hpp"

int main() {
  using namespace lens;
  bench::Testbed testbed = bench::Testbed::gpu_wifi();
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  const std::size_t budget = bench::fast_mode() ? 60 : 160;
  const unsigned seeds[] = {1, 2, 3};
  const std::vector<double> reference = {70.0, 3000.0};

  struct Arm {
    const char* label;
    opt::AcquisitionKind kind;
  };
  const Arm arms[] = {
      {"Thompson (paper)", opt::AcquisitionKind::kThompsonScalarized},
      {"posterior mean", opt::AcquisitionKind::kMeanScalarized},
      {"LCB (beta=2)", opt::AcquisitionKind::kLowerConfidenceBound},
  };

  bench::heading("Ablation -- acquisition function (budget " + std::to_string(budget) +
                 " evaluations, " + std::to_string(std::size(seeds)) + " seeds)");
  std::printf("%-18s %14s %16s %16s\n", "acquisition", "mean HV", "front size",
              "min ene @err<25");
  for (const Arm& arm : arms) {
    double hv_sum = 0.0;
    double front_size_sum = 0.0;
    double best_energy = 1e300;
    for (unsigned seed : seeds) {
      core::NasConfig config;
      config.mobo.num_initial = budget / 8;
      config.mobo.num_iterations = budget - budget / 8;
      config.mobo.seed = seed;
      config.mobo.acquisition.kind = arm.kind;
      core::NasDriver driver(space, testbed.evaluator, accuracy, config);
      const core::NasResult result = driver.run();
      const opt::ParetoFront front =
          front_2d(result.history, core::kErrorObjective, core::kEnergyObjective);
      std::vector<std::vector<double>> points;
      for (const auto& p : front.points()) points.push_back(p.objectives);
      hv_sum += opt::hypervolume(points, reference);
      front_size_sum += static_cast<double>(front.size());
      for (const core::EvaluatedCandidate& c : result.history) {
        if (c.error_percent < 25.0) best_energy = std::min(best_energy, c.energy_mj);
      }
    }
    const double n = static_cast<double>(std::size(seeds));
    std::printf("%-18s %14.0f %16.1f %13.0f mJ\n", arm.label, hv_sum / n,
                front_size_sum / n, best_energy);
  }
  bench::rule();
  std::printf("reading: with a noisy 3-objective landscape and random-weight scalarization\n"
              "already injecting exploration, all three acquisitions land within a few %%\n"
              "hypervolume of each other at this budget. Thompson sampling remains the\n"
              "paper-faithful (Dragonfly-family) default; the ablation shows the choice is\n"
              "not what LENS's gains hinge on.\n");
  return 0;
}
