// Table I reproduction: preferred AlexNet deployment option per region
// (average user upload throughput from OpenSignal 2020), device capability,
// and optimization metric.

#include <cstdio>

#include "bench_common.hpp"
#include "dnn/presets.hpp"

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();
  perf::DeviceSimulator gpu_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator cpu_sim(perf::jetson_tx2_cpu());
  const perf::SimulatorOracle gpu(gpu_sim);
  const perf::SimulatorOracle cpu(cpu_sim);
  const core::DeploymentEvaluator gpu_wifi(
      gpu, comm::CommModel(comm::WirelessTechnology::kWifi, 5.0));
  const core::DeploymentEvaluator cpu_lte(
      cpu, comm::CommModel(comm::WirelessTechnology::kLte, 5.0));

  struct Region {
    const char* name;
    double tu_mbps;
    // Paper Table I expectations, for side-by-side comparison.
    const char* paper[4];
  };
  const Region regions[] = {
      {"S. Korea", 16.1, {"All-Edge", "Pool5", "All-Cloud", "All-Cloud"}},
      {"USA", 7.5, {"All-Edge", "Pool5", "Pool5", "All-Cloud"}},
      {"Afghanistan", 0.7, {"All-Edge", "All-Edge", "All-Edge", "Pool5"}},
  };

  bench::heading("Table I -- deployment preference per region / device / metric");
  std::printf("%-12s %6s | %-22s %-22s | %-22s %-22s\n", "region", "t_u", "GPU/WiFi latency",
              "GPU/WiFi energy", "CPU/LTE latency", "CPU/LTE energy");
  std::printf("%-12s %6s | %-22s %-22s | %-22s %-22s\n", "", "(Mbps)", "(ours / paper)",
              "(ours / paper)", "(ours / paper)", "(ours / paper)");
  bench::rule(120);

  int matches = 0;
  for (const Region& region : regions) {
    const core::DeploymentEvaluation g = gpu_wifi.evaluate(alexnet, region.tu_mbps);
    const core::DeploymentEvaluation c = cpu_lte.evaluate(alexnet, region.tu_mbps);
    const std::string ours[4] = {
        g.latency_choice().label(alexnet), g.energy_choice().label(alexnet),
        c.latency_choice().label(alexnet), c.energy_choice().label(alexnet)};
    std::string cells[4];
    for (int k = 0; k < 4; ++k) {
      // Paper labels "Pool5" = our "split@pool5".
      const std::string paper =
          std::string(region.paper[k]) == "Pool5" ? "split@pool5" : region.paper[k];
      const bool match = ours[k] == paper;
      matches += match ? 1 : 0;
      cells[k] = ours[k] + (match ? " [=]" : " [!" + paper + "]");
    }
    std::printf("%-12s %6.1f | %-22s %-22s | %-22s %-22s\n", region.name, region.tu_mbps,
                cells[0].c_str(), cells[1].c_str(), cells[2].c_str(), cells[3].c_str());
  }
  bench::rule(120);
  std::printf("cells matching the paper's Table I: %d / 12\n", matches);
  return 0;
}
