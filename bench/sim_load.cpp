// System-level load study (extension): deployment options under a Poisson
// request stream.
//
// The paper costs one inference in isolation; under load the edge
// accelerator and the radio are queueing resources, and the deployment
// choice sets the system's throughput ceiling: All-Edge is bounded by the
// full on-device service time (~32 ms -> ~31 req/s), the pool5 split frees
// the edge after the conv trunk (~16 ms -> ~62 req/s) but occupies the
// radio, All-Cloud is bounded by the link rate alone. The discrete-event
// simulator makes those ceilings and the P99 blow-ups visible.

#include <cstdio>

#include "bench_common.hpp"
#include "dnn/presets.hpp"
#include "sim/battery.hpp"
#include "sim/system.hpp"

int main() {
  using namespace lens;
  perf::DeviceSimulator device(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(device);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(oracle, wifi);
  const dnn::Architecture alexnet = dnn::alexnet();
  const core::DeploymentEvaluation evaluation = evaluator.evaluate(alexnet, 30.0);

  // Locate the named options.
  std::size_t all_edge = 0;
  std::size_t all_cloud = 0;
  std::size_t pool5 = 0;
  for (std::size_t i = 0; i < evaluation.options.size(); ++i) {
    const auto label = evaluation.options[i].label(alexnet);
    if (label == "All-Edge") all_edge = i;
    if (label == "All-Cloud") all_cloud = i;
    if (label == "split@pool5") pool5 = i;
  }

  comm::ThroughputTrace trace;
  trace.samples_mbps = {30.0};
  trace.interval_s = 1000.0;

  struct Policy {
    const char* label;
    sim::DispatchPolicy policy;
    std::size_t fixed;
  };
  const Policy policies[] = {
      {"All-Edge", sim::DispatchPolicy::kFixed, all_edge},
      {"split@pool5", sim::DispatchPolicy::kFixed, pool5},
      {"All-Cloud", sim::DispatchPolicy::kFixed, all_cloud},
      {"dynamic", sim::DispatchPolicy::kDynamic, 0},
      {"queue-aware", sim::DispatchPolicy::kQueueAware, 0},
  };

  const double duration = bench::fast_mode() ? 30.0 : 120.0;
  bench::heading("Load study -- AlexNet on TX2 GPU, steady 30 Mbps WiFi (P50/P99 ms)");
  std::printf("%-12s", "req/s");
  for (const Policy& p : policies) std::printf(" | %-19s", p.label);
  std::printf("\n");
  for (double rate : {5.0, 15.0, 25.0, 35.0, 50.0, 70.0}) {
    std::printf("%-12.0f", rate);
    for (const Policy& p : policies) {
      sim::SimConfig config;
      config.duration_s = duration;
      config.arrival_rate_hz = rate;
      config.policy = p.policy;
      config.fixed_option = p.fixed;
      config.metric = runtime::OptimizeFor::kLatency;
      sim::EdgeCloudSystem system(evaluation.options, wifi, trace, config);
      const sim::SimStats stats = system.run();
      if (stats.p99_latency_ms < 10000.0) {
        std::printf(" | %7.0f / %-9.0f", stats.p50_latency_ms, stats.p99_latency_ms);
      } else {
        std::printf(" | %7.0f / %-9s", stats.p50_latency_ms, "OVERLOAD");
      }
    }
    std::printf("\n");
  }

  bench::heading("Energy per inference and utilizations at 25 req/s");
  std::printf("%-12s %14s %10s %10s %12s\n", "policy", "mJ/inference", "edge util",
              "link util", "throughput");
  for (const Policy& p : policies) {
    sim::SimConfig config;
    config.duration_s = duration;
    config.arrival_rate_hz = 25.0;
    config.policy = p.policy;
    config.fixed_option = p.fixed;
    sim::EdgeCloudSystem system(evaluation.options, wifi, trace, config);
    const sim::SimStats stats = system.run();
    std::printf("%-12s %14.1f %9.1f%% %9.1f%% %9.1f/s\n", p.label,
                stats.energy_per_inference_mj, 100.0 * stats.edge_utilization,
                100.0 * stats.link_utilization, stats.throughput_hz);
  }
  bench::heading("Battery life at 2 req/s (phone-class 40 kJ pack, 1.5 W idle)");
  std::printf("%-12s %16s %18s\n", "policy", "inferences", "hours to empty");
  for (const Policy& p : policies) {
    sim::SimConfig config;
    config.duration_s = 36000.0;  // long horizon so the battery is the binding limit
    config.arrival_rate_hz = 2.0;
    config.policy = p.policy;
    config.fixed_option = p.fixed;
    sim::EdgeCloudSystem system(evaluation.options, wifi, trace, config);
    system.run();
    const sim::BatteryReport report = sim::battery_replay(system.records(), {});
    std::printf("%-12s %16zu %17.2f%s\n", p.label, report.inferences_served,
                report.time_to_empty_s / 3600.0, report.survived ? "+" : "");
  }
  bench::rule();
  std::printf("takeaway: partitioning is not only a latency/energy trade -- it is a\n"
              "throughput multiplier (the edge frees up after the conv trunk) and a\n"
              "battery multiplier, both invisible to single-inference analysis.\n");
  return 0;
}
