// Validation (substitution check): does the surrogate accuracy model move
// the way real training moves?
//
// DESIGN.md replaces "train each candidate on CIFAR-10 for 10 epochs" with
// a deterministic surrogate; the search only consumes the *ordering*. Two
// controlled sweeps isolate the axes the surrogate models — width
// (capacity) and depth — and show that from-scratch ShapeSet training moves
// monotonically the same way. A random-architecture Spearman check follows,
// honestly noisier: tiny random architectures confound capacity with
// bottleneck effects (2-filter stems, sub-class-count FC widths) that
// neither CIFAR-10-calibrated surrogates nor few-epoch training resolve.

#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/accuracy.hpp"
#include "core/trained_accuracy.hpp"
#include "ml/metrics.hpp"

namespace {

using namespace lens;

// Surrogate rescaled for training-sized architectures (the default
// capacity baseline of log10(params)=5 matches the paper's 224x224 space).
core::SurrogateAccuracyModel small_scale_surrogate(double noise_std) {
  core::SurrogateAccuracyConfig config;
  config.capacity_baseline = 2.5;
  config.overcapacity_knee = 9.0;
  config.noise_std = noise_std;
  return core::SurrogateAccuracyModel(config);
}

core::TrainedAccuracyConfig trainer_config() {
  core::TrainedAccuracyConfig config;
  config.train_samples = 512;
  config.test_samples = 512;
  config.epochs = lens::bench::fast_mode() ? 3 : 4;
  config.trainer.batch_size = 32;
  config.trainer.sgd.learning_rate = 0.005;
  return config;
}

}  // namespace

int main() {
  using namespace lens;

  bench::heading("Controlled width sweep (2 conv blocks, fc32; capacity axis)");
  std::printf("%-8s %10s %12s %14s\n", "width", "params", "surrogate %", "trained err %");
  const core::SurrogateAccuracyModel surrogate = small_scale_surrogate(0.0);
  std::vector<double> width_surrogate, width_trained;
  for (int width : {2, 4, 8, 16, 32}) {
    core::SearchSpaceConfig sc;
    sc.input = {16, 16, 3};
    sc.num_blocks = 2;
    sc.depths = {1};
    sc.kernels = {3};
    sc.filters = {width};
    sc.fc_units = {32};
    sc.min_pools = 2;
    const core::SearchSpace space(sc);
    core::Genotype g(space.num_dimensions(), 0);
    g[3] = 1;
    g[7] = 1;  // both pools on
    const dnn::Architecture arch = space.decode(g);
    const core::TrainedAccuracyEvaluator trained(space, trainer_config());
    const double s = surrogate.test_error_percent(g, arch);
    const double t = trained.test_error_percent(g, arch);
    width_surrogate.push_back(s);
    width_trained.push_back(t);
    std::printf("%-8d %10llu %11.1f%% %13.1f%%\n", width,
                static_cast<unsigned long long>(arch.total_params()), s, t);
  }
  std::printf("width-sweep Spearman: %.3f (1.0 = identical ordering)\n",
              ml::spearman_correlation(width_surrogate, width_trained));

  bench::heading("Controlled depth sweep (width 8, fc32; depth axis)");
  std::printf("%-8s %10s %12s %14s\n", "convs", "params", "surrogate %", "trained err %");
  std::vector<double> depth_surrogate, depth_trained;
  for (int depth_index : {0, 1, 2}) {
    core::SearchSpaceConfig sc;
    sc.input = {16, 16, 3};
    sc.num_blocks = 2;
    sc.depths = {1, 2, 3};
    sc.kernels = {3};
    sc.filters = {8};
    sc.fc_units = {32};
    sc.min_pools = 2;
    const core::SearchSpace space(sc);
    core::Genotype g(space.num_dimensions(), 0);
    g[0] = depth_index;
    g[4] = depth_index;
    g[3] = 1;
    g[7] = 1;
    const dnn::Architecture arch = space.decode(g);
    const core::TrainedAccuracyEvaluator trained(space, trainer_config());
    const double s = surrogate.test_error_percent(g, arch);
    const double t = trained.test_error_percent(g, arch);
    depth_surrogate.push_back(s);
    depth_trained.push_back(t);
    std::printf("%-8zu %10llu %11.1f%% %13.1f%%\n", arch.count_kind(dnn::LayerKind::kConv),
                static_cast<unsigned long long>(arch.total_params()), s, t);
  }
  std::printf("depth-sweep Spearman: %.3f\n",
              ml::spearman_correlation(depth_surrogate, depth_trained));

  const int candidates = bench::fast_mode() ? 8 : 14;
  bench::heading("Random-architecture check (" + std::to_string(candidates) +
                 " candidates; noisier by construction)");
  core::SearchSpaceConfig sc;
  sc.input = {16, 16, 3};
  sc.num_blocks = 3;
  sc.depths = {1, 2};
  sc.kernels = {3, 5};
  sc.filters = {4, 8, 16};
  sc.fc_units = {32, 64};
  sc.min_pools = 2;
  const core::SearchSpace space(sc);
  const core::SurrogateAccuracyModel noisy_surrogate = small_scale_surrogate(1.2);
  const core::TrainedAccuracyEvaluator trained(space, trainer_config());
  std::mt19937_64 rng(41);
  std::vector<double> rs, rt;
  for (int i = 0; i < candidates; ++i) {
    const core::Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    rs.push_back(noisy_surrogate.test_error_percent(g, arch));
    rt.push_back(trained.test_error_percent(g, arch));
  }
  std::printf("random-sample Spearman: %.3f\n", ml::spearman_correlation(rs, rt));
  bench::rule();
  std::printf("takeaway: on the axes the surrogate models (capacity, depth) real training\n"
              "orders architectures identically; random tiny architectures add bottleneck\n"
              "effects and training variance that lower the raw rank correlation. The\n"
              "paper-scale search space (>=1e5 params/candidate) sits in the regime where\n"
              "the capacity axis dominates.\n");
  return 0;
}
