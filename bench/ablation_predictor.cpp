// Ablation: the layer-performance prediction model family (paper §IV-C).
//
// Algorithm 1 only needs the predictors to rank deployment options
// correctly. This harness compares the roofline predictor (default) and the
// plain ridge-on-log-features baseline against the ground-truth oracle:
// per-layer accuracy, end-to-end architecture totals, and — what actually
// matters — agreement of the chosen deployment option.

#include <cmath>
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/search_space.hpp"

namespace {

using namespace lens;

struct Agreement {
  double latency_choice = 0.0;  ///< fraction agreeing with oracle argmin
  double energy_choice = 0.0;
  double latency_value_mape = 0.0;  ///< |predicted best - true best| / true
  double energy_value_mape = 0.0;
};

Agreement measure(const core::DeploymentEvaluator& predicted,
                  const core::DeploymentEvaluator& oracle, const core::SearchSpace& space,
                  double tu, int trials, unsigned seed) {
  std::mt19937_64 rng(seed);
  Agreement result;
  for (int i = 0; i < trials; ++i) {
    const core::Genotype g = space.random(rng);
    const dnn::Architecture arch = space.decode(g);
    const core::DeploymentEvaluation p = predicted.evaluate(arch, tu);
    const core::DeploymentEvaluation o = oracle.evaluate(arch, tu);
    if (p.latency_choice().label(arch) == o.latency_choice().label(arch)) {
      result.latency_choice += 1.0;
    }
    if (p.energy_choice().label(arch) == o.energy_choice().label(arch)) {
      result.energy_choice += 1.0;
    }
    result.latency_value_mape +=
        std::abs(p.best_latency_ms() - o.best_latency_ms()) / o.best_latency_ms();
    result.energy_value_mape +=
        std::abs(p.best_energy_mj() - o.best_energy_mj()) / o.best_energy_mj();
  }
  const double n = trials;
  result.latency_choice /= n;
  result.energy_choice /= n;
  result.latency_value_mape *= 100.0 / n;
  result.energy_value_mape *= 100.0 / n;
  return result;
}

}  // namespace

int main() {
  using namespace lens;
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const perf::RooflinePredictor roofline =
      perf::RooflinePredictor::train(sim, {.samples_per_kind = 500, .seed = 21});
  const perf::RegressionPredictor ridge =
      perf::RegressionPredictor::train(sim, {.samples_per_kind = 500, .seed = 21});
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);

  const core::DeploymentEvaluator oracle_eval(oracle, wifi);
  const core::DeploymentEvaluator roofline_eval(roofline, wifi);
  const core::DeploymentEvaluator ridge_eval(ridge, wifi);
  const core::SearchSpace space;

  bench::heading("Ablation -- prediction-model family (held-out quality)");
  std::printf("%-10s | %8s %8s | %8s %8s\n", "model", "lat R2", "lat MAPE", "pow R2",
              "pow MAPE");
  for (const auto& [kind, v] : roofline.validation()) {
    std::printf("roofline/%s %7.3f %7.1f%% %8.3f %7.1f%%\n",
                dnn::kind_name(kind).c_str(), v.latency_r2, v.latency_mape, v.power_r2,
                v.power_mape);
  }
  for (const auto& [kind, v] : ridge.validation()) {
    std::printf("ridge/%s    %7.3f %7.1f%% %8.3f %7.1f%%\n",
                dnn::kind_name(kind).c_str(), v.latency_r2, v.latency_mape, v.power_r2,
                v.power_mape);
  }

  const int trials = bench::fast_mode() ? 40 : 150;
  bench::heading("Ablation -- Algorithm-1 decision agreement vs oracle (" +
                 std::to_string(trials) + " random candidates)");
  std::printf("%-10s %6s | %12s %12s | %12s %12s\n", "predictor", "t_u",
              "lat choice =", "ene choice =", "lat val err", "ene val err");
  for (double tu : {1.0, 3.0, 10.0}) {
    const Agreement rf = measure(roofline_eval, oracle_eval, space, tu, trials, 31);
    const Agreement rg = measure(ridge_eval, oracle_eval, space, tu, trials, 31);
    std::printf("%-10s %6.1f | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n", "roofline", tu,
                100.0 * rf.latency_choice, 100.0 * rf.energy_choice, rf.latency_value_mape,
                rf.energy_value_mape);
    std::printf("%-10s %6.1f | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n", "ridge", tu,
                100.0 * rg.latency_choice, 100.0 * rg.energy_choice, rg.latency_value_mape,
                rg.energy_value_mape);
  }
  bench::rule();
  std::printf("takeaway: the roofline family is the right §IV-C instantiation for this\n"
              "device class; log-ridge misranks options often enough to distort the search.\n");
  return 0;
}
