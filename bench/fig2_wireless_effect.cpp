// Fig. 2 reproduction: latency and energy of each AlexNet deployment option
// (All-Edge / split@pool5 / split@fc6 / All-Cloud) under GPU+WiFi and
// CPU+LTE, across upload throughputs. The paper's headline: the best option
// flips with t_u — e.g. GPU/WiFi latency prefers Pool5 only at 30 Mbps.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dnn/presets.hpp"
#include "viz/ascii.hpp"

namespace {

void run_device(const char* title, const lens::core::DeploymentEvaluator& evaluator,
                const lens::dnn::Architecture& alexnet) {
  using namespace lens;
  bench::heading(title);
  std::printf("%-8s | %-28s | %-28s\n", "t_u", "latency (ms) per option -> best",
              "energy (mJ) per option -> best");
  for (double tu : {1.0, 5.0, 10.0, 30.0}) {
    const core::DeploymentEvaluation r = evaluator.evaluate(alexnet, tu);
    std::printf("%5.1f Mb |", tu);
    for (const core::DeploymentOption& o : r.options) {
      std::printf(" %s=%.0f", o.label(alexnet).c_str(), o.latency_ms);
    }
    std::printf(" -> %s |", r.latency_choice().label(alexnet).c_str());
    for (const core::DeploymentOption& o : r.options) {
      std::printf(" %s=%.0f", o.label(alexnet).c_str(), o.energy_mj);
    }
    std::printf(" -> %s\n", r.energy_choice().label(alexnet).c_str());
  }
}

}  // namespace

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();

  // Ground-truth oracles isolate the deployment physics (the predictor
  // version of the same table appears in the integration tests).
  perf::DeviceSimulator gpu_sim(perf::jetson_tx2_gpu());
  perf::DeviceSimulator cpu_sim(perf::jetson_tx2_cpu());
  const perf::SimulatorOracle gpu(gpu_sim);
  const perf::SimulatorOracle cpu(cpu_sim);
  const core::DeploymentEvaluator gpu_wifi(
      gpu, comm::CommModel(comm::WirelessTechnology::kWifi, 5.0));
  const core::DeploymentEvaluator cpu_lte(
      cpu, comm::CommModel(comm::WirelessTechnology::kLte, 5.0));

  run_device("Fig. 2 (left) -- GPU / WiFi", gpu_wifi, alexnet);
  run_device("Fig. 2 (right) -- CPU / LTE", cpu_lte, alexnet);

  // The figure itself: per-option energy curves vs throughput (GPU/WiFi).
  bench::heading("Energy vs throughput, per option (GPU/WiFi) -- the Fig. 2 curves");
  {
    const core::DeploymentEvaluation probe = gpu_wifi.evaluate(alexnet, 1.0);
    std::vector<viz::Series> series;
    const char glyphs[] = {'c', '5', '6', '7', 'e'};
    for (std::size_t i = 0; i < probe.options.size(); ++i) {
      viz::Series s;
      s.label = probe.options[i].label(alexnet);
      s.glyph = glyphs[i % sizeof glyphs];
      series.push_back(std::move(s));
    }
    for (double tu = 0.25; tu <= 32.0; tu *= 1.3) {
      const core::DeploymentEvaluation eval = gpu_wifi.evaluate(alexnet, tu);
      for (std::size_t i = 0; i < eval.options.size(); ++i) {
        series[i].x.push_back(tu);
        series[i].y.push_back(eval.options[i].energy_mj);
      }
    }
    viz::PlotConfig plot;
    plot.height = 16;
    plot.x_label = "t_u (Mbps)";
    plot.y_label = "mJ";
    plot.log_x = true;
    plot.log_y = true;
    std::fputs(viz::line_plot(series, plot).c_str(), stdout);
  }

  bench::heading("Fig. 2 takeaway check");
  const auto low = gpu_wifi.evaluate(alexnet, 5.0);
  const auto high = gpu_wifi.evaluate(alexnet, 30.0);
  std::printf("GPU/WiFi latency best @5 Mbps : %s (paper: All-Edge)\n",
              low.latency_choice().label(alexnet).c_str());
  std::printf("GPU/WiFi latency best @30 Mbps: %s (paper: Pool5)\n",
              high.latency_choice().label(alexnet).c_str());
  return 0;
}
