// Scaling study of the lens::par evaluation layer: runs one fixed MOBO NAS
// budget at 1/2/4/8 worker threads, reports wall-clock speedup, and checks
// that every run is bit-identical to the 1-thread reference (the lens::par
// determinism contract). Expected speedup at 4 threads on >=4 hardware
// cores is >= 2.5x; on fewer cores the wall-clock columns flatten out but
// the identity check still exercises the full parallel machinery.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "par/runtime.hpp"

namespace {

lens::core::NasResult run_budget(std::size_t threads) {
  lens::par::set_max_threads(threads);
  lens::perf::DeviceSimulator simulator(lens::perf::jetson_tx2_gpu());
  lens::perf::SimulatorOracle oracle(simulator);
  lens::comm::CommModel comm(lens::comm::WirelessTechnology::kWifi, 5.0);
  lens::core::DeploymentEvaluator evaluator(oracle, comm);
  lens::core::SearchSpace space;
  lens::core::SurrogateAccuracyModel accuracy;

  lens::core::NasConfig config;
  config.mobo.num_initial = lens::bench::fast_mode() ? 12 : 24;
  config.mobo.num_iterations = lens::bench::fast_mode() ? 8 : 24;
  config.mobo.pool_size = 192;
  config.mobo.seed = 3;
  config.tu_mbps = 3.0;

  lens::core::NasDriver driver(space, evaluator, accuracy, config);
  return driver.run();
}

bool identical(const lens::core::NasResult& a, const lens::core::NasResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].genotype != b.history[i].genotype) return false;
    if (a.history[i].error_percent != b.history[i].error_percent) return false;
    if (a.history[i].latency_ms != b.history[i].latency_ms) return false;
    if (a.history[i].energy_mj != b.history[i].energy_mj) return false;
  }
  if (a.front.size() != b.front.size()) return false;
  for (std::size_t i = 0; i < a.front.points().size(); ++i) {
    if (a.front.points()[i].id != b.front.points()[i].id) return false;
    if (a.front.points()[i].objectives != b.front.points()[i].objectives) return false;
  }
  return true;
}

}  // namespace

int main() {
  lens::bench::heading("Parallel evaluation scaling (fixed MOBO NAS budget)");
  std::printf("hardware threads: %zu\n\n", lens::par::hardware_threads());

  lens::core::NasResult reference;
  double t1_ms = 0.0;
  lens::bench::JsonEmitter json("bench_parallel");
  std::printf("%8s %12s %9s %12s %12s\n", "threads", "wall(ms)", "speedup", "evals",
              "identical");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const auto start = std::chrono::steady_clock::now();
    const lens::core::NasResult result = run_budget(threads);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (threads == 1) {
      reference = result;
      t1_ms = ms;
    }
    const bool same = identical(reference, result);
    std::printf("%8zu %12.1f %8.2fx %12zu %12s\n", threads, ms, t1_ms / ms,
                result.history.size(), same ? "yes" : "NO");
    json.add("threads=" + std::to_string(threads),
             {{"wall_ms", ms},
              {"speedup_vs_1_thread", t1_ms / ms},
              {"evaluations", static_cast<double>(result.history.size())},
              {"identical_to_reference", same ? 1.0 : 0.0}});
    if (!same) {
      std::fprintf(stderr, "determinism violation at %zu threads\n", threads);
      return 1;
    }
  }
  lens::par::set_max_threads(0);
  json.write("BENCH_parallel.json");
  std::printf(
      "\n(speedup saturates at the physical core count; the identity column\n"
      " is the lens::par determinism contract: bit-identical NasResult —\n"
      " history order, objective values, Pareto ids — at any thread count)\n");
  return 0;
}
