// Scaling study of the lens::par evaluation layer: runs one fixed 300-eval
// MOBO NAS search (fast mode: 40 evals) at 1/2/4/8 worker threads, reports
// wall-clock speedup, and checks that every run is bit-identical to the
// 1-thread reference (the lens::par determinism contract).
//
// Wall-clock speedup only means something when the machine actually has the
// cores (CI runners routinely expose 1-2). Each run therefore also records
// its parallel-section chunk structure with a par::ScalingProbe and reports
// the MODELED speedup: per-chunk CPU times list-scheduled onto T virtual
// workers (probed sections) plus the measured serial remainder (Amdahl
// accounting over CPU time). The modeled columns are hardware-independent —
// they answer "what does this chunk structure support at T threads" — and
// are what tools/check_thread_scaling.py gates on when the host has fewer
// than 8 hardware threads.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.hpp"
#include "par/probe.hpp"
#include "par/runtime.hpp"

namespace {

lens::core::NasResult run_budget(std::size_t threads) {
  lens::par::set_max_threads(threads);
  lens::perf::DeviceSimulator simulator(lens::perf::jetson_tx2_gpu());
  lens::perf::SimulatorOracle oracle(simulator);
  lens::comm::CommModel comm(lens::comm::WirelessTechnology::kWifi, 5.0);
  lens::core::DeploymentEvaluator evaluator(oracle, comm);
  lens::core::SearchSpace space;
  lens::core::SurrogateAccuracyModel accuracy;

  lens::core::NasConfig config;
  // The 300-eval search of the ROADMAP scaling target (paper §V budget).
  config.mobo.num_initial = lens::bench::fast_mode() ? 12 : 60;
  config.mobo.num_iterations = lens::bench::fast_mode() ? 28 : 240;
  config.mobo.pool_size = 192;
  config.mobo.seed = 3;
  config.tu_mbps = 3.0;

  lens::core::NasDriver driver(space, evaluator, accuracy, config);
  return driver.run();
}

bool identical(const lens::core::NasResult& a, const lens::core::NasResult& b) {
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].genotype != b.history[i].genotype) return false;
    if (a.history[i].error_percent != b.history[i].error_percent) return false;
    if (a.history[i].latency_ms != b.history[i].latency_ms) return false;
    if (a.history[i].energy_mj != b.history[i].energy_mj) return false;
  }
  if (a.front.size() != b.front.size()) return false;
  for (std::size_t i = 0; i < a.front.points().size(); ++i) {
    if (a.front.points()[i].id != b.front.points()[i].id) return false;
    if (a.front.points()[i].objectives != b.front.points()[i].objectives) return false;
  }
  return true;
}

double process_cpu_ms() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return static_cast<double>(std::clock()) * 1e3 / CLOCKS_PER_SEC;
}

}  // namespace

int main() {
  lens::bench::heading("Parallel evaluation scaling (fixed 300-eval MOBO NAS search)");
  const std::size_t hardware = lens::par::hardware_threads();
  std::printf("hardware threads: %zu%s\n\n", hardware,
              lens::bench::fast_mode() ? "  [fast mode: 40-eval budget]" : "");

  lens::core::NasResult reference;
  double t1_ms = 0.0;
  lens::bench::JsonEmitter json("bench_parallel");
  json.add("config",
           {{"hardware_threads", static_cast<double>(hardware)},
            {"fast_mode", lens::bench::fast_mode() ? 1.0 : 0.0},
            {"evaluations", lens::bench::fast_mode() ? 40.0 : 300.0}});
  std::printf("%8s %12s %9s %13s %14s %12s\n", "threads", "wall(ms)", "wall-spd",
              "modeled-spd", "parallel-frac", "identical");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    lens::par::ScalingProbe probe;
    const double cpu0 = process_cpu_ms();
    const auto start = std::chrono::steady_clock::now();
    const lens::core::NasResult result = run_budget(threads);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    const double cpu_ms = process_cpu_ms() - cpu0;
    if (threads == 1) {
      reference = result;
      t1_ms = ms;
    }
    const bool same = identical(reference, result);

    // Amdahl accounting over CPU time: probed parallel sections support
    // makespan(T); everything else ran serially.
    const double work_ms = probe.work_ms();
    const double makespan_ms = probe.makespan_ms(threads);
    const double serial_ms = std::max(0.0, cpu_ms - work_ms);
    const double modeled_speedup =
        (serial_ms + work_ms) / std::max(1e-9, serial_ms + makespan_ms);
    const double parallel_fraction = cpu_ms > 0.0 ? work_ms / cpu_ms : 0.0;

    std::printf("%8zu %12.1f %8.2fx %12.2fx %13.1f%% %12s\n", threads, ms, t1_ms / ms,
                modeled_speedup, 100.0 * parallel_fraction, same ? "yes" : "NO");
    json.add("threads=" + std::to_string(threads),
             {{"wall_ms", ms},
              {"speedup_vs_1_thread", t1_ms / ms},
              {"modeled_speedup", modeled_speedup},
              {"probe_work_ms", work_ms},
              {"probe_makespan_ms", makespan_ms},
              {"serial_cpu_ms", serial_ms},
              {"parallel_fraction", parallel_fraction},
              {"probe_sections", static_cast<double>(probe.sections())},
              {"probe_chunks", static_cast<double>(probe.chunks())},
              {"evaluations", static_cast<double>(result.history.size())},
              {"identical_to_reference", same ? 1.0 : 0.0}});
    if (!same) {
      std::fprintf(stderr, "determinism violation at %zu threads\n", threads);
      return 1;
    }
  }
  lens::par::set_max_threads(0);
  if (!json.write("BENCH_parallel.json")) return 1;
  std::printf(
      "\n(wall-spd saturates at the physical core count; modeled-spd is the\n"
      " probe's hardware-independent estimate — per-chunk CPU times\n"
      " list-scheduled onto T workers plus the serial remainder. The\n"
      " identity column is the lens::par determinism contract: bit-identical\n"
      " NasResult — history order, objective values, Pareto ids — at any\n"
      " thread count.)\n");
  return 0;
}
