// Ablation: the >=4-pools search-space constraint (paper §IV-B: "we add the
// constraint of having at least 4 Pooling layers in each architecture to
// highlight cases that can benefit from layer distribution").
//
// This harness samples architectures under min_pools in {0..5} and measures
// how often partitioning is even *possible* (a viable split point exists)
// and how often it is actually *chosen* by Algorithm 1 at the paper's
// 3 Mbps — quantifying what the constraint buys.

#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/search_space.hpp"

int main() {
  using namespace lens;
  bench::Testbed testbed = bench::Testbed::gpu_wifi();
  const int samples = bench::fast_mode() ? 100 : 400;

  bench::heading("Ablation -- minimum-pool-count constraint (paper uses 4)");
  // "conv split": a viable partition point inside the convolutional trunk
  // (FC outputs are tiny, so an FC-entry split exists for every
  // architecture and tells us nothing).
  std::printf("%-10s %16s %18s %18s %16s\n", "min_pools", "conv split ok",
              "ene picks split", "ene gain vs edge", "mean conv splits");
  for (int min_pools = 0; min_pools <= 5; ++min_pools) {
    core::SearchSpaceConfig config;
    config.min_pools = min_pools;
    const core::SearchSpace space(config);
    std::mt19937_64 rng(100 + static_cast<unsigned>(min_pools));

    int conv_split_possible = 0;
    int energy_picks_split = 0;
    double conv_split_count = 0.0;
    double energy_gain_sum = 0.0;
    for (int i = 0; i < samples; ++i) {
      const core::Genotype g = space.random(rng);
      const dnn::Architecture arch = space.decode(g);
      int conv_splits = 0;
      for (std::size_t idx : arch.partition_candidates()) {
        if (arch.layers()[idx].spec.kind != dnn::LayerKind::kDense) ++conv_splits;
      }
      conv_split_count += conv_splits;
      if (conv_splits > 0) ++conv_split_possible;
      const core::DeploymentEvaluation eval = testbed.evaluator.evaluate(arch, 3.0);
      if (eval.energy_choice().kind == core::DeploymentKind::kPartitioned) {
        ++energy_picks_split;
      }
      // How much does the best option save vs forcing All-Edge?
      energy_gain_sum += (eval.all_edge().energy_mj - eval.best_energy_mj()) /
                         eval.all_edge().energy_mj;
    }
    std::printf("%-10d %15.1f%% %17.1f%% %17.1f%% %16.2f\n", min_pools,
                100.0 * conv_split_possible / samples, 100.0 * energy_picks_split / samples,
                100.0 * energy_gain_sum / samples, conv_split_count / samples);
  }
  bench::rule();
  std::printf("takeaway: below ~4 pools, most sampled architectures never shrink their\n"
              "feature maps under the input size, so layer distribution has nothing to\n"
              "offer -- the constraint concentrates the search where LENS differs from\n"
              "the Traditional approach.\n");
  return 0;
}
