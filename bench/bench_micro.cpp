// Microbenchmarks (google-benchmark) backing the paper's §IV-D cost claims:
// Algorithm 1 is O(l) in the layer count and vanishes next to the O(n^3)
// cost of one Bayesian-optimization model update.

#include <random>

#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "opt/gp.hpp"
#include "perf/predictor.hpp"

namespace {

using namespace lens;

const perf::DeviceSimulator& simulator() {
  static const perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  return sim;
}

const perf::RooflinePredictor& predictor() {
  static const perf::RooflinePredictor pred =
      perf::RooflinePredictor::train(simulator(), {.samples_per_kind = 300, .seed = 3});
  return pred;
}

/// Builds a deep synthetic architecture with `blocks` conv blocks.
dnn::Architecture deep_architecture(int blocks) {
  std::vector<dnn::LayerSpec> layers;
  int pools = 0;
  for (int b = 0; b < blocks; ++b) {
    layers.push_back(dnn::LayerSpec::conv(64, 3));
    layers.push_back(dnn::LayerSpec::conv(64, 3));
    if (pools < 5) {  // keep spatial dims alive for very deep stacks
      layers.push_back(dnn::LayerSpec::max_pool(2, 2));
      ++pools;
    }
  }
  layers.push_back(dnn::LayerSpec::dense(512));
  layers.push_back(dnn::LayerSpec::dense(10, dnn::Activation::kSoftmax));
  return dnn::Architecture("deep", {224, 224, 3}, std::move(layers));
}

// ---- Algorithm 1: per-candidate evaluation, O(l) ---------------------------

void BM_Algorithm1_Evaluate(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(arch, 3.0));
  }
  state.counters["layers"] = static_cast<double>(arch.num_layers());
}
BENCHMARK(BM_Algorithm1_Evaluate)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// ---- Bayesian optimization: GP refit, O(n^3) --------------------------------

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    y.push_back(unit(rng));
    x.push_back(std::move(xi));
  }
  opt::GpConfig config;
  config.tune_hyperparameters = false;
  for (auto _ : state) {
    opt::GaussianProcess gp(config);
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp);
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(320);

// ---- Thompson acquisition over a candidate pool -----------------------------

void BM_GpJointSample(benchmark::State& state) {
  const std::size_t n = 160;
  const auto pool = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    y.push_back(unit(rng));
    x.push_back(std::move(xi));
  }
  opt::GpConfig config;
  config.tune_hyperparameters = false;
  opt::GaussianProcess gp(config);
  gp.fit(x, y);
  std::vector<std::vector<double>> query;
  for (std::size_t i = 0; i < pool; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    query.push_back(std::move(xi));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.sample_at(query, rng));
  }
}
BENCHMARK(BM_GpJointSample)->Arg(64)->Arg(128)->Arg(256);

// ---- Layer performance prediction -------------------------------------------

void BM_RooflinePredict(benchmark::State& state) {
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(128, 3);
  const dnn::TensorShape input{56, 56, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor().predict(conv, input));
  }
}
BENCHMARK(BM_RooflinePredict);

void BM_SimulatorMeasure(benchmark::State& state) {
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(128, 3);
  const dnn::TensorShape input{56, 56, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator().measure(conv, input));
  }
}
BENCHMARK(BM_SimulatorMeasure);

// ---- Search-space plumbing ---------------------------------------------------

void BM_SearchSpaceDecode(benchmark::State& state) {
  const core::SearchSpace space;
  std::mt19937_64 rng(5);
  const core::Genotype g = space.random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.decode(g));
  }
}
BENCHMARK(BM_SearchSpaceDecode);

}  // namespace
