// Microbenchmarks (google-benchmark) backing the paper's §IV-D cost claims:
// Algorithm 1 is O(l) in the layer count and vanishes next to the cost of a
// Bayesian-optimization model update — O(n^3) for a full (re)fit, O(n^2)
// for the incremental bordered extension the MOBO loop now uses between
// hyper-parameter retunes. Results are also written to BENCH_micro.json
// (per-size timings plus fit/extend speedup ratios) for cross-PR tracking.

#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/evaluator.hpp"
#include "core/plan.hpp"
#include "core/run_checkpoint.hpp"
#include "core/search_space.hpp"
#include "core/topology.hpp"
#include "dnn/presets.hpp"
#include "opt/gp.hpp"
#include "opt/kernel.hpp"
#include "opt/matrix.hpp"
#include "perf/predictor.hpp"
#include "sim/system.hpp"

namespace {

using namespace lens;

const perf::DeviceSimulator& simulator() {
  static const perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  return sim;
}

const perf::RooflinePredictor& predictor() {
  static const perf::RooflinePredictor pred =
      perf::RooflinePredictor::train(simulator(), {.samples_per_kind = 300, .seed = 3});
  return pred;
}

/// Builds a deep synthetic architecture with `blocks` conv blocks.
dnn::Architecture deep_architecture(int blocks) {
  std::vector<dnn::LayerSpec> layers;
  int pools = 0;
  for (int b = 0; b < blocks; ++b) {
    layers.push_back(dnn::LayerSpec::conv(64, 3));
    layers.push_back(dnn::LayerSpec::conv(64, 3));
    if (pools < 5) {  // keep spatial dims alive for very deep stacks
      layers.push_back(dnn::LayerSpec::max_pool(2, 2));
      ++pools;
    }
  }
  layers.push_back(dnn::LayerSpec::dense(512));
  layers.push_back(dnn::LayerSpec::dense(10, dnn::Activation::kSoftmax));
  return dnn::Architecture("deep", {224, 224, 3}, std::move(layers));
}

// ---- Algorithm 1: per-candidate evaluation, O(l) ---------------------------

void BM_Algorithm1_Evaluate(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(arch, 3.0));
  }
  state.counters["layers"] = static_cast<double>(arch.num_layers());
}
BENCHMARK(BM_Algorithm1_Evaluate)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// ---- Compiled plans: compile once, price per throughput ---------------------
// BM_EvaluateFull is the legacy one-shot path (predictors + pricing every
// call); BM_PlanCompile is the predictor-heavy stage paid once per
// architecture; BM_PlanPrice is the O(options) re-pricing paid per
// throughput query. The BENCH_micro.json "PlanPriceVsEvaluate" rows track
// the full-evaluation-to-reprice speedup per architecture depth.

void BM_EvaluateFull(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(arch, 3.0));
  }
}
BENCHMARK(BM_EvaluateFull)->Arg(8)->Arg(32);

void BM_PlanCompile(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.compile(arch));
  }
}
BENCHMARK(BM_PlanCompile)->Arg(8)->Arg(32);

void BM_PlanPrice(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  const core::DeploymentPlan plan = evaluator.compile(arch);
  core::DeploymentEvaluation out;  // price_into reuses its storage
  double tu = 0.5;
  for (auto _ : state) {
    plan.price_into(tu, out);
    benchmark::DoNotOptimize(out);
    tu = tu < 64.0 ? tu * 2.0 : 0.5;  // sweep, so no branch gets special-cased
  }
  state.counters["options"] = static_cast<double>(plan.num_options());
}
BENCHMARK(BM_PlanPrice)->Arg(8)->Arg(32);

// ---- K-tier plans: 3-tier compile and per-hop pricing -----------------------
// The edge-fog-cloud lattice enumerates O(l^2) cut pairs (vs O(l) two-tier
// splits) and runs two predictor pipelines, so the 3-tier compile and the
// per-hop reprice get their own BENCH_micro.json rows to track the K-tier
// overhead against the classic path above.

const perf::RooflinePredictor& fog_predictor() {
  static const perf::DeviceSimulator fog_sim(perf::datacenter_gpu());
  static const perf::RooflinePredictor pred =
      perf::RooflinePredictor::train(fog_sim, {.samples_per_kind = 300, .seed = 5});
  return pred;
}

core::TierTopology bench_three_tier() {
  core::EdgeFogCloudConfig config;
  config.radio = comm::CommModel(comm::WirelessTechnology::kWifi, 5.0);
  config.backhaul = comm::CommModel(comm::WirelessTechnology::kWifi, 20.0);
  return core::edge_fog_cloud(predictor(), fog_predictor(), nullptr, config);
}

void BM_PlanCompile3T(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const core::DeploymentEvaluator evaluator(bench_three_tier());
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.compile(arch));
  }
  state.counters["layers"] = static_cast<double>(arch.num_layers());
}
BENCHMARK(BM_PlanCompile3T)->Arg(8)->Arg(32);

void BM_PlanPrice3T(benchmark::State& state) {
  const dnn::Architecture arch = deep_architecture(static_cast<int>(state.range(0)));
  const core::DeploymentEvaluator evaluator(bench_three_tier());
  const core::DeploymentPlan plan = evaluator.compile(arch);
  core::DeploymentEvaluation out;  // price_into reuses its storage
  std::vector<double> tu{0.5, 40.0};
  for (auto _ : state) {
    plan.price_into(tu, out);
    benchmark::DoNotOptimize(out);
    tu[0] = tu[0] < 64.0 ? tu[0] * 2.0 : 0.5;  // sweep the radio axis
  }
  state.counters["options"] = static_cast<double>(plan.num_options());
}
BENCHMARK(BM_PlanPrice3T)->Arg(8)->Arg(32);

// ---- Bayesian optimization: GP posterior maintenance ------------------------
// BM_GpFit is the full refit (O(n^2 d) Gram + O(n^3) factorization) the MOBO
// loop used to pay every iteration; BM_GpObserve is the incremental bordered
// append (O(n d) Gram row + O(n^2) extend/solves) it pays now. The
// BENCH_micro.json "GpFitVsObserve" rows record the per-size ratio, which
// should grow ~linearly with n.

/// Random training set in the 23-dim normalized-genotype space.
void random_dataset(std::size_t n, std::mt19937_64& rng, std::vector<std::vector<double>>* x,
                    std::vector<double>* y) {
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    y->push_back(unit(rng));
    x->push_back(std::move(xi));
  }
}

void BM_GpFit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  random_dataset(n, rng, &x, &y);
  opt::GpConfig config;
  config.tune_hyperparameters = false;
  for (auto _ : state) {
    opt::GaussianProcess gp(config);
    gp.fit(x, y);
    benchmark::DoNotOptimize(gp);
  }
}
BENCHMARK(BM_GpFit)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(320);

void BM_GpObserve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(7);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  random_dataset(n + 1, rng, &x, &y);
  const std::vector<double> x_new = x.back();
  const double y_new = y.back();
  x.pop_back();
  y.pop_back();
  opt::GpConfig config;
  config.tune_hyperparameters = false;
  for (auto _ : state) {
    // The O(n^3) base fit is rebuilt outside the timed region; only the
    // incremental append is measured. Fixed iteration count (below) keeps
    // the untimed rebuild from dominating wall-clock.
    state.PauseTiming();
    opt::GaussianProcess gp(config);
    gp.fit(x, y);
    state.ResumeTiming();
    gp.observe(x_new, y_new);
    benchmark::DoNotOptimize(gp);
  }
}
BENCHMARK(BM_GpObserve)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(320)->Iterations(48);

// The matrix-layer primitive underneath observe(): one bordered Cholesky
// row append, measured against refactorizing the bordered matrix in full.
void BM_CholeskyExtend(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(13);
  std::normal_distribution<double> gauss(0.0, 1.0);
  opt::Matrix b(n + 1, n + 1);
  for (std::size_t r = 0; r < n + 1; ++r) {
    for (std::size_t c = 0; c < n + 1; ++c) b(r, c) = gauss(rng);
  }
  opt::Matrix a = b.multiply(b.transposed());
  a.add_diagonal(1.0);
  opt::Matrix leading(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) leading(r, c) = a(r, c);
  }
  const opt::CholeskyFactor base = opt::CholeskyFactor::factorize(leading);
  std::vector<double> cross(n);
  for (std::size_t c = 0; c < n; ++c) cross[c] = a(n, c);
  for (auto _ : state) {
    state.PauseTiming();
    opt::CholeskyFactor factor = base;
    state.ResumeTiming();
    factor.extend(cross, a(n, n));
    benchmark::DoNotOptimize(factor);
  }
}
BENCHMARK(BM_CholeskyExtend)->Arg(25)->Arg(50)->Arg(100)->Arg(200)->Arg(320)->Iterations(256);

// ---- SIMD hot kernels: blocked gram row and batch pricing -------------------
// BM_GramRow times Kernel::cross_into — the O(n d) cross-covariance row the
// incremental GP append and every posterior draw walk — whose blocked
// four-rows-per-pass sweep must stay bit-identical to the scalar oracle
// (tests/test_gp.cpp). BM_BatchPrice times DeploymentPlan::price_batch, the
// option-outer/throughput-inner pricing sweep behind robust evaluation and
// throughput portfolios. Both rows land in BENCH_micro.json so the kernel
// trajectory stays visible across PRs.

void BM_GramRow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(21);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> xs;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    xs.push_back(std::move(xi));
  }
  std::vector<double> z(23);
  for (double& v : z) v = unit(rng);
  const opt::Matern52Kernel kernel(1.0, 0.5);
  std::vector<double> out(n);
  for (auto _ : state) {
    kernel.cross_into(xs, z, out.data());
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  state.counters["rows"] = static_cast<double>(n);
}
BENCHMARK(BM_GramRow)->Arg(64)->Arg(160)->Arg(320);

void BM_BatchPrice(benchmark::State& state) {
  const auto sweep = static_cast<std::size_t>(state.range(0));
  const dnn::Architecture arch = deep_architecture(16);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  const core::DeploymentPlan plan = evaluator.compile(arch);
  std::vector<double> tus(sweep);
  for (std::size_t i = 0; i < sweep; ++i) {
    tus[i] = 0.5 + 63.5 * static_cast<double>(i) / static_cast<double>(sweep);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.price_batch(tus));
  }
  state.counters["options"] = static_cast<double>(plan.num_options());
}
BENCHMARK(BM_BatchPrice)->Arg(16)->Arg(64)->Arg(256);

// ---- Thompson acquisition over a candidate pool -----------------------------

void BM_GpJointSample(benchmark::State& state) {
  const std::size_t n = 160;
  const auto pool = static_cast<std::size_t>(state.range(0));
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    y.push_back(unit(rng));
    x.push_back(std::move(xi));
  }
  opt::GpConfig config;
  config.tune_hyperparameters = false;
  opt::GaussianProcess gp(config);
  gp.fit(x, y);
  std::vector<std::vector<double>> query;
  for (std::size_t i = 0; i < pool; ++i) {
    std::vector<double> xi(23);
    for (double& v : xi) v = unit(rng);
    query.push_back(std::move(xi));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.sample_at(query, rng));
  }
}
BENCHMARK(BM_GpJointSample)->Arg(64)->Arg(128)->Arg(256);

// ---- Layer performance prediction -------------------------------------------

void BM_RooflinePredict(benchmark::State& state) {
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(128, 3);
  const dnn::TensorShape input{56, 56, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor().predict(conv, input));
  }
}
BENCHMARK(BM_RooflinePredict);

void BM_SimulatorMeasure(benchmark::State& state) {
  const dnn::LayerSpec conv = dnn::LayerSpec::conv(128, 3);
  const dnn::TensorShape input{56, 56, 64};
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulator().measure(conv, input));
  }
}
BENCHMARK(BM_SimulatorMeasure);

// ---- Search-space plumbing ---------------------------------------------------

void BM_SearchSpaceDecode(benchmark::State& state) {
  const core::SearchSpace space;
  std::mt19937_64 rng(5);
  const core::Genotype g = space.random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.decode(g));
  }
}
BENCHMARK(BM_SearchSpaceDecode);

// ---- Run checkpoints: durable save + exact-state restore --------------------
// BM_CheckpointSave is the periodic cost the checkpointed search loop pays
// every `period` evaluations: snapshot serialization plus the atomic framed
// write (fsync included) and rotation pruning. BM_CheckpointRestore is the
// crash-recovery path: read + verify + parse the newest snapshot and rebuild
// a fresh engine from it (history replay + frozen-hyper GP refits). The
// BENCH_micro.json "CheckpointSaveVsEvaluate" rows track the save against a
// single Algorithm-1 candidate evaluation — periodic snapshots must stay a
// fraction of one evaluation.

/// Synthetic MOBO run shared by the checkpoint benchmarks: cheap 2-objective
/// problem over [0,1]^5, stepped to the requested history size.
struct CheckpointRig {
  opt::MoboConfig config;
  opt::MoboEngine::Sampler sampler = [](std::mt19937_64& rng) {
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<double> x(5);
    for (double& v : x) v = unit(rng);
    return x;
  };
  opt::MoboEngine::Objectives objectives = [](const std::vector<double>& x) {
    double bowl = 0.0;
    for (double v : x) bowl += (v - 0.4) * (v - 0.4);
    return std::vector<double>{bowl, 1.0 - x[0]};
  };

  explicit CheckpointRig(std::size_t evaluations) {
    config.num_initial = 10;
    config.num_iterations = evaluations;  // headroom past the warm-up
    config.pool_size = 32;
    config.seed = 17;
  }

  opt::MoboEngine make() const { return {config, 2, sampler, objectives}; }
};

void BM_CheckpointSave(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CheckpointRig rig(n);
  opt::MoboEngine engine = rig.make();
  engine.step(n);
  const opt::MoboSnapshot snapshot = engine.snapshot();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lens_bench_ckpt_save").string();
  std::filesystem::remove_all(dir);
  for (auto _ : state) {
    core::save_run_checkpoint(dir, snapshot, 2);
  }
  std::filesystem::remove_all(dir);
  state.counters["observations"] = static_cast<double>(snapshot.history.size());
}
BENCHMARK(BM_CheckpointSave)->Arg(50)->Arg(150)->Iterations(64);

void BM_CheckpointRestore(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const CheckpointRig rig(n);
  opt::MoboEngine engine = rig.make();
  engine.step(n);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "lens_bench_ckpt_restore").string();
  std::filesystem::remove_all(dir);
  core::save_run_checkpoint(dir, engine.snapshot(), 1);
  for (auto _ : state) {
    const opt::MoboSnapshot snapshot = core::load_newest_run_checkpoint(dir);
    opt::MoboEngine restored = rig.make();
    restored.restore(snapshot);
    benchmark::DoNotOptimize(restored);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CheckpointRestore)->Arg(50)->Arg(150)->Iterations(32);

// ---- Serving simulation: fault injection overhead ---------------------------
// Arg(0) = fault-free, Arg(1) = all four fault classes active. The
// BENCH_micro.json "SimFaultyVsClean" row tracks the injector's overhead on
// end-to-end serving throughput (fault-free must stay ~free: the injector
// is a null pointer check on the hot path).

void BM_SimFaulty(benchmark::State& state) {
  const bool faulty = state.range(0) != 0;
  const dnn::Architecture arch = dnn::alexnet();
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const core::DeploymentEvaluator evaluator(predictor(), wifi);
  const core::DeploymentPlan plan = evaluator.compile(arch);
  comm::ThroughputTrace trace;
  trace.samples_mbps = {30.0};
  trace.interval_s = 1000.0;
  sim::SimConfig config;
  config.duration_s = 20.0;
  config.arrival_rate_hz = 20.0;
  config.policy = sim::DispatchPolicy::kDynamic;
  config.metric = runtime::OptimizeFor::kLatency;
  if (faulty) {
    config.faults.link_outage_rate_hz = 1.0 / 10.0;
    config.faults.link_outage_mean_s = 2.0;
    config.faults.cloud_outage_rate_hz = 1.0 / 15.0;
    config.faults.cloud_outage_mean_s = 3.0;
    config.faults.rtt_spike_rate_hz = 1.0 / 12.0;
    config.faults.edge_slowdown_rate_hz = 1.0 / 20.0;
  }
  std::size_t requests = 0;
  for (auto _ : state) {
    sim::EdgeCloudSystem system(plan, trace, config);
    const sim::SimStats stats = system.run();
    benchmark::DoNotOptimize(stats);
    requests += stats.completed + stats.dropped;
  }
  state.counters["requests_per_s"] =
      benchmark::Counter(static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimFaulty)->Arg(0)->Arg(1);

// ---- JSON output -------------------------------------------------------------

/// Console reporter that additionally collects per-run adjusted real times
/// so main() can emit BENCH_micro.json via lens::bench::JsonEmitter.
class CollectingReporter final : public benchmark::ConsoleReporter {
 public:
  struct Entry {
    std::string name;
    double real_time_ns;
    double iterations;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      entries_.push_back({run.benchmark_name(), run.GetAdjustedRealTime(),
                          static_cast<double>(run.iterations)});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Adjusted real time of the entry named `name`, or 0.0 when absent.
  double time_of(const std::string& name) const {
    for (const Entry& e : entries_) {
      if (e.name == name) return e.real_time_ns;
    }
    return 0.0;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  lens::bench::JsonEmitter json("bench_micro");
  for (const CollectingReporter::Entry& e : reporter.entries()) {
    json.add(e.name, {{"real_time_ns", e.real_time_ns}, {"iterations", e.iterations}});
  }
  // Per-size full-refit vs incremental-append ratios: the complexity-drop
  // signal tracked across PRs (should grow ~linearly with n).
  for (const int n : {25, 50, 100, 200, 320}) {
    const std::string size = std::to_string(n);
    const double fit = reporter.time_of("BM_GpFit/" + size);
    const double observe = reporter.time_of("BM_GpObserve/" + size + "/iterations:48");
    if (fit > 0.0 && observe > 0.0) {
      json.add("GpFitVsObserve/" + size, {{"speedup", fit / observe}});
    }
  }
  // Full re-evaluation vs plan re-pricing: the compile/price split's payoff
  // per architecture depth (acceptance floor: >= 10x).
  for (const int blocks : {8, 32}) {
    const std::string size = std::to_string(blocks);
    const double full = reporter.time_of("BM_EvaluateFull/" + size);
    const double price = reporter.time_of("BM_PlanPrice/" + size);
    if (full > 0.0 && price > 0.0) {
      json.add("PlanPriceVsEvaluate/" + size, {{"speedup", full / price}});
    }
  }
  // Durable checkpoint save vs one Algorithm-1 candidate evaluation: the
  // periodic snapshot must stay a fraction of a single evaluation.
  {
    const double evaluate = reporter.time_of("BM_EvaluateFull/8");
    for (const int n : {50, 150}) {
      const std::string size = std::to_string(n);
      const double save = reporter.time_of("BM_CheckpointSave/" + size + "/iterations:64");
      if (evaluate > 0.0 && save > 0.0) {
        json.add("CheckpointSaveVsEvaluate/" + size, {{"overhead", save / evaluate}});
      }
    }
  }
  // Fault-injected vs fault-free serving: the injector's end-to-end cost.
  {
    const double clean = reporter.time_of("BM_SimFaulty/0");
    const double faulty = reporter.time_of("BM_SimFaulty/1");
    if (clean > 0.0 && faulty > 0.0) {
      json.add("SimFaultyVsClean", {{"overhead", faulty / clean}});
    }
  }
  json.write("BENCH_micro.json");
  benchmark::Shutdown();
  return 0;
}
