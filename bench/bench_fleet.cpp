// Scaling study of the fleet serving engine: one fixed fleet scenario
// (AR(1) traces + fault injection + tracker/hysteresis switching + pricing,
// all through the batched SoA kernels) run at 1/2/4/8 worker threads, plus
// absolute throughput rows (device-steps/sec) at 100k and 1M devices.
//
// Same reporting contract as bench_parallel: wall-clock speedup is only
// meaningful when the host has the cores, so every run also records its
// chunk structure with a par::ScalingProbe and reports the modeled speedup
// (per-chunk CPU times list-scheduled onto T virtual workers plus the
// measured serial remainder). tools/check_thread_scaling.py gates
// BENCH_fleet.json on the same schema it gates BENCH_parallel.json —
// identical_to_reference here means the FleetStats CSV report is
// byte-identical to the 1-thread run (the fleet determinism contract).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>

#include "bench_common.hpp"
#include "cloud/machine.hpp"
#include "core/topology.hpp"
#include "dnn/presets.hpp"
#include "fleet/fleet.hpp"
#include "par/probe.hpp"
#include "par/runtime.hpp"
#include "sim/fault.hpp"

namespace {

lens::fleet::FleetConfig fleet_scenario(std::size_t devices, std::size_t steps) {
  lens::fleet::FleetConfig config;
  config.devices = devices;
  config.steps = steps;
  config.seed = 21;
  config.trace.mean_mbps = 8.0;
  config.trace.sigma = 0.5;
  config.trace.outage_start_probability = 0.02;
  config.faults.link_outage_rate_hz = 1.0 / 3600.0;
  config.faults.link_outage_mean_s = 120.0;
  config.faults.cloud_outage_rate_hz = 1.0 / 7200.0;
  config.faults.cloud_outage_mean_s = 180.0;
  return config;
}

double process_cpu_ms() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return static_cast<double>(std::clock()) * 1e3 / CLOCKS_PER_SEC;
}

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

int main() {
  lens::bench::heading("Fleet serving scaling (batched SoA device hot path)");
  const std::size_t hardware = lens::par::hardware_threads();
  const bool fast = lens::bench::fast_mode();
  std::printf("hardware threads: %zu%s\n\n", hardware,
              fast ? "  [fast mode: reduced fleet sizes]" : "");

  const lens::bench::Testbed rig = lens::bench::Testbed::gpu_wifi();
  const lens::core::DeploymentPlan plan = rig.evaluator.compile(lens::dnn::alexnet());

  const std::size_t scaling_devices = fast ? 20000 : 100000;
  const std::size_t scaling_steps = fast ? 32 : 64;
  lens::fleet::FleetEngine engine(plan, fleet_scenario(scaling_devices, scaling_steps));

  lens::bench::JsonEmitter json("bench_fleet");
  json.add("config",
           {{"hardware_threads", static_cast<double>(hardware)},
            {"fast_mode", fast ? 1.0 : 0.0},
            {"devices", static_cast<double>(scaling_devices)},
            {"steps", static_cast<double>(scaling_steps)}});

  std::string reference;
  double t1_ms = 0.0;
  std::printf("%8s %12s %9s %13s %14s %12s\n", "threads", "wall(ms)", "wall-spd",
              "modeled-spd", "parallel-frac", "identical");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    lens::par::set_max_threads(threads);
    lens::par::ScalingProbe probe;
    const double cpu0 = process_cpu_ms();
    const auto start = std::chrono::steady_clock::now();
    const lens::fleet::FleetStats stats = engine.run();
    const double ms = wall_ms_since(start);
    const double cpu_ms = process_cpu_ms() - cpu0;
    const std::string csv = stats.csv();
    if (threads == 1) {
      reference = csv;
      t1_ms = ms;
    }
    const bool same = csv == reference;

    const double work_ms = probe.work_ms();
    const double makespan_ms = probe.makespan_ms(threads);
    const double serial_ms = std::max(0.0, cpu_ms - work_ms);
    const double modeled_speedup =
        (serial_ms + work_ms) / std::max(1e-9, serial_ms + makespan_ms);
    const double parallel_fraction = cpu_ms > 0.0 ? work_ms / cpu_ms : 0.0;

    std::printf("%8zu %12.1f %8.2fx %12.2fx %13.1f%% %12s\n", threads, ms, t1_ms / ms,
                modeled_speedup, 100.0 * parallel_fraction, same ? "yes" : "NO");
    json.add("threads=" + std::to_string(threads),
             {{"wall_ms", ms},
              {"speedup_vs_1_thread", t1_ms / ms},
              {"modeled_speedup", modeled_speedup},
              {"probe_work_ms", work_ms},
              {"probe_makespan_ms", makespan_ms},
              {"serial_cpu_ms", serial_ms},
              {"parallel_fraction", parallel_fraction},
              {"probe_sections", static_cast<double>(probe.sections())},
              {"probe_chunks", static_cast<double>(probe.chunks())},
              {"device_steps_per_sec", 1e3 * static_cast<double>(scaling_devices) *
                                           static_cast<double>(scaling_steps) / ms},
              {"identical_to_reference", same ? 1.0 : 0.0}});
    if (!same) {
      std::fprintf(stderr, "fleet determinism violation at %zu threads\n", threads);
      return 1;
    }
  }
  lens::par::set_max_threads(0);

  // Absolute throughput at fleet scale (ROADMAP north-star sizes). Fast mode
  // keeps CI runners inside a few seconds by dropping the 1M-device row.
  std::printf("\n%12s %8s %12s %16s %16s\n", "devices", "steps", "wall(ms)",
              "device-steps/s", "steps/s");
  for (const std::size_t devices : {std::size_t{100000}, std::size_t{1000000}}) {
    if (fast && devices > 100000) continue;
    const std::size_t steps = fast ? 16 : 64;
    lens::fleet::FleetEngine big(plan, fleet_scenario(devices, steps));
    const auto start = std::chrono::steady_clock::now();
    const lens::fleet::FleetStats stats = big.run();
    const double ms = wall_ms_since(start);
    const double device_steps_per_s =
        1e3 * static_cast<double>(devices) * static_cast<double>(steps) / ms;
    const double steps_per_s = 1e3 * static_cast<double>(steps) / ms;
    std::printf("%12zu %8zu %12.1f %16.3g %16.2f\n", devices, steps, ms,
                device_steps_per_s, steps_per_s);
    json.add("devices=" + std::to_string(devices),
             {{"steps", static_cast<double>(steps)},
              {"wall_ms", ms},
              {"device_steps_per_sec", device_steps_per_s},
              {"steps_per_sec", steps_per_s},
              {"total_switches", static_cast<double>(stats.total_switches)},
              {"mean_cloud_qps", stats.mean_cloud_qps}});
  }

  // K-tier regional path: a 3-tier vgg16 fleet with four failure domains, a
  // dead fog site, a scripted backhaul brownout (per-step curve re-collapse
  // in the browned region), and finite fog + cloud pools. Gated by the same
  // determinism bit: the 8-thread CSV must byte-match the 1-thread run.
  std::printf("\nK-tier regional path (4 domains, brownout + fog failure):\n");
  std::printf("%8s %12s %9s %12s\n", "threads", "wall(ms)", "wall-spd", "identical");
  {
    const lens::perf::DeviceSimulator fog_sim(lens::perf::datacenter_gpu());
    const lens::perf::SimulatorOracle fog_oracle(fog_sim);
    const lens::perf::SimulatorOracle edge_oracle(rig.simulator);
    lens::core::EdgeFogCloudConfig topo;
    topo.radio = lens::comm::CommModel(lens::comm::WirelessTechnology::kWifi, 4.0);
    topo.backhaul = lens::comm::CommModel(lens::comm::WirelessTechnology::kWifi, 40.0);
    const lens::core::DeploymentPlan ktier_plan =
        lens::core::DeploymentEvaluator(
            lens::core::edge_fog_cloud(edge_oracle, fog_oracle, nullptr, topo))
            .compile(lens::dnn::vgg16());

    lens::fleet::FleetConfig config = fleet_scenario(scaling_devices, scaling_steps);
    config.trace.mean_mbps = 4.0;
    config.num_regions = 4;
    config.fog = lens::cloud::fog_site_defaults(8);
    lens::cloud::CloudConfig dc;
    dc.machines = 32;
    config.cloud = dc;
    config.region_episodes.push_back(
        {1, {lens::sim::FaultClass::kFogSiteFailure, 0.0, 1e9, 1.0}});
    config.region_episodes.push_back(
        {2, {lens::sim::FaultClass::kBackhaulBrownout, 0.0, 1e9, 0.8, 1}});
    lens::fleet::FleetEngine regional(ktier_plan, {4.0, 40.0}, config);

    std::string ktier_reference;
    double ktier_t1_ms = 0.0;
    for (const std::size_t threads : {1u, 8u}) {
      lens::par::set_max_threads(threads);
      const auto start = std::chrono::steady_clock::now();
      const lens::fleet::FleetStats stats = regional.run();
      const double ms = wall_ms_since(start);
      const std::string csv = stats.csv();
      if (threads == 1) {
        ktier_reference = csv;
        ktier_t1_ms = ms;
      }
      const bool same = csv == ktier_reference;
      std::printf("%8zu %12.1f %8.2fx %12s\n", threads, ms, ktier_t1_ms / ms,
                  same ? "yes" : "NO");
      json.add("threads=" + std::to_string(threads) + "-ktier-regions",
               {{"wall_ms", ms},
                {"speedup_vs_1_thread", ktier_t1_ms / ms},
                {"device_steps_per_sec", 1e3 * static_cast<double>(scaling_devices) *
                                             static_cast<double>(scaling_steps) / ms},
                {"fog_shed", static_cast<double>(stats.fog_shed)},
                {"degraded_steps", static_cast<double>(stats.degraded_steps)},
                {"identical_to_reference", same ? 1.0 : 0.0}});
      if (!same) {
        std::fprintf(stderr, "K-tier regional determinism violation at %zu threads\n",
                     threads);
        return 1;
      }
    }
    lens::par::set_max_threads(0);
  }

  if (!json.write("BENCH_fleet.json")) return 1;
  std::printf(
      "\n(identical means the whole FleetStats CSV — percentile histograms,\n"
      " per-step cloud QPS series, switch counts — is byte-identical to the\n"
      " 1-thread reference; modeled-spd is the probe's hardware-independent\n"
      " estimate of what the chunk structure supports at T threads.)\n");
  return 0;
}
