#pragma once
// Shared setup and formatting helpers for the experiment harnesses.

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "comm/commcost.hpp"
#include "core/evaluator.hpp"
#include "core/nas.hpp"
#include "io/io.hpp"
#include "perf/predictor.hpp"

namespace lens::bench {

/// Machine-readable benchmark output: collects flat {name, metric -> value}
/// records and writes them as one JSON document (BENCH_micro.json /
/// BENCH_parallel.json) so the perf trajectory is tracked across PRs — CI
/// uploads these files as workflow artifacts.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void add(std::string name, std::vector<std::pair<std::string, double>> metrics) {
    records_.push_back({std::move(name), std::move(metrics)});
  }

  /// Write the collected records to `path` via io::atomic_write_checked:
  /// write-temp -> fsync -> rename plus the `# lens:fnv1a` integrity footer,
  /// so an interrupted bench run can never leave a truncated BENCH_*.json
  /// for CI to half-parse (consumers must strip `#`-prefixed lines — see
  /// tools/check_thread_scaling.py). Returns false (and warns on stderr) on
  /// any I/O failure; the previous file, if any, is left untouched.
  bool write(const std::string& path) const {
    try {
      io::atomic_write_checked(path, [this](std::ostream& out) { render(out); });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "JsonEmitter: writing %s failed: %s\n", path.c_str(), e.what());
      return false;
    }
    return true;
  }

 private:
  void render(std::ostream& out) const {
    out << "{\n  \"benchmark\": \"" << escaped(benchmark_) << "\",\n  \"results\": [";
    char number[64];
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << escaped(records_[i].name)
          << '"';
      for (const auto& [key, value] : records_[i].metrics) {
        std::snprintf(number, sizeof number, "%.17g", value);
        out << ", \"" << escaped(key) << "\": " << number;
      }
      out << '}';
    }
    out << "\n  ]\n}\n";
  }

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string benchmark_;
  std::vector<Record> records_;
};

/// Horizontal rule sized to the table width.
inline void rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

inline void heading(const std::string& title) {
  std::printf("\n");
  rule();
  std::printf("%s\n", title.c_str());
  rule();
}

/// Search-iteration budget: the paper uses 300 Bayesian iterations; set
/// LENS_BENCH_FAST=1 to shrink search-driven benches ~5x for quick runs.
inline bool fast_mode() {
  const char* env = std::getenv("LENS_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline std::size_t search_iterations() { return fast_mode() ? 60 : 300; }
inline std::size_t search_initial() { return fast_mode() ? 12 : 20; }

/// Number of seed replicates for search-driven benches (LENS_BENCH_SEEDS,
/// default 1 — the paper reports single runs).
inline unsigned search_seeds() {
  const char* env = std::getenv("LENS_BENCH_SEEDS");
  if (env == nullptr) return 1;
  const int parsed = std::atoi(env);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 1;
}

/// The standard experimental rig of the paper's §V: TX2-class GPU edge
/// device, WiFi uplink, 5 ms average round trip, trained roofline
/// performance predictors (the paper's §IV-C regression models).
struct Testbed {
  perf::DeviceSimulator simulator;
  perf::RooflinePredictor predictor;
  comm::CommModel comm;
  core::DeploymentEvaluator evaluator;

  static Testbed gpu_wifi() {
    perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
    perf::RooflinePredictor pred =
        perf::RooflinePredictor::train(sim, {.samples_per_kind = 500, .seed = 11});
    comm::CommModel comm(comm::WirelessTechnology::kWifi, 5.0);
    return Testbed{std::move(sim), std::move(pred), comm};
  }

  static Testbed cpu_lte() {
    perf::DeviceSimulator sim(perf::jetson_tx2_cpu());
    perf::RooflinePredictor pred =
        perf::RooflinePredictor::train(sim, {.samples_per_kind = 500, .seed = 12});
    comm::CommModel comm(comm::WirelessTechnology::kLte, 5.0);
    return Testbed{std::move(sim), std::move(pred), comm};
  }

 private:
  Testbed(perf::DeviceSimulator sim, perf::RooflinePredictor pred, comm::CommModel c)
      : simulator(std::move(sim)),
        predictor(std::move(pred)),
        comm(c),
        evaluator(predictor, comm) {}
};

}  // namespace lens::bench
