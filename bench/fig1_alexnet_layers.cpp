// Fig. 1 reproduction: per-layer output feature-map sizes and latency share
// for AlexNet on the TX2-class GPU.
//
// Paper claims to reproduce in shape:
//  - the three FC layers account for ~50% of total execution time;
//  - feature maps stay LARGER than the (uint8) input until Pool5, so layers
//    before Pool5 are not viable partition points.

#include <cstdio>

#include "bench_common.hpp"
#include "dnn/presets.hpp"

int main() {
  using namespace lens;
  const dnn::Architecture alexnet = dnn::alexnet();
  const perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const dnn::DataSizeModel sizes;

  bench::heading("Fig. 1 -- AlexNet per-layer feature-map size and latency share (TX2 GPU)");
  const std::uint64_t input_bytes = alexnet.input_bytes(sizes);
  std::printf("input: 224x224x3 uint8 = %llu bytes (147 kB)\n\n",
              static_cast<unsigned long long>(input_bytes));
  std::printf("%-7s %14s %12s %12s %9s %10s\n", "layer", "out shape", "out bytes",
              "lat (ms)", "lat %", "viable?");

  double total_latency = 0.0;
  for (const dnn::LayerInfo& info : alexnet.layers()) {
    total_latency += sim.measure(info.spec, info.input).latency_ms;
  }
  double fc_latency = 0.0;
  double running = 0.0;
  for (const dnn::LayerInfo& info : alexnet.layers()) {
    const double latency = sim.measure(info.spec, info.input).latency_ms;
    running += latency;
    if (info.spec.kind == dnn::LayerKind::kDense) fc_latency += latency;
    const std::uint64_t out_bytes = sizes.activation_bytes(info.output);
    char shape[32];
    std::snprintf(shape, sizeof shape, "%dx%dx%d", info.output.height, info.output.width,
                  info.output.channels);
    std::printf("%-7s %14s %12llu %12.3f %8.1f%% %10s\n", info.name.c_str(), shape,
                static_cast<unsigned long long>(out_bytes), latency,
                100.0 * latency / total_latency, out_bytes < input_bytes ? "yes" : "no");
  }
  bench::rule();
  std::printf("total latency: %.2f ms | FC share: %.1f%% (paper: ~50%%)\n", total_latency,
              100.0 * fc_latency / total_latency);
  const auto candidates = alexnet.partition_candidates(sizes);
  std::printf("first viable partition point: %s (paper: Pool5)\n",
              alexnet.layers()[candidates.front()].name.c_str());
  return 0;
}
