// Fig. 7 reproduction (paper §V-B): partitioning *within* the optimization
// vs partitioning *after* it.
//
// Both arms spend the same search budget; the "within" arm is LENS, the
// "after" arm is the Traditional search whose explored candidates are
// partitioned post hoc. The paper counts explored architectures satisfying
// accuracy/energy criteria and reports that the within-arm finds more
// energy-efficient candidates (Ergy<200, Ergy<250 grow) without losing the
// accuracy-constrained counts.

#include <cstdio>
#include <functional>

#include "bench_common.hpp"
#include "core/analysis.hpp"

int main() {
  using namespace lens;
  bench::Testbed testbed = bench::Testbed::gpu_wifi();
  const core::SearchSpace space;
  const core::SurrogateAccuracyModel accuracy;

  core::NasConfig within_config;
  within_config.mobo.num_initial = bench::search_initial();
  within_config.mobo.num_iterations = bench::search_iterations();
  within_config.mobo.seed = 2;
  within_config.tu_mbps = 3.0;
  within_config.mode = core::ObjectiveMode::kBestDeployment;
  core::NasConfig after_config = within_config;
  after_config.mode = core::ObjectiveMode::kAllEdgeOnly;

  std::printf("search budget: %zu random + %zu MOBO iterations per arm%s\n",
              within_config.mobo.num_initial, within_config.mobo.num_iterations,
              bench::fast_mode() ? " (LENS_BENCH_FAST)" : "");

  core::NasDriver within(space, testbed.evaluator, accuracy, within_config);
  const core::NasResult within_result = within.run();
  std::printf("partition-within search done\n");
  core::NasDriver after(space, testbed.evaluator, accuracy, after_config);
  const core::NasResult after_result = after.run();
  std::printf("partition-after search done\n");

  // For the "after" arm, candidates are costed post hoc at their best split
  // (both arms then report best-deployment energies, as the paper does).
  auto best_energy = [](const core::EvaluatedCandidate& c) {
    return c.deployment.best_energy_mj();
  };
  auto error = [](const core::EvaluatedCandidate& c) { return c.error_percent; };

  struct Criterion {
    const char* label;
    std::function<bool(const core::EvaluatedCandidate&)> pass;
  };
  const Criterion criteria[] = {
      {"Err < 20%", [&](const auto& c) { return error(c) < 20.0; }},
      {"Err < 25%", [&](const auto& c) { return error(c) < 25.0; }},
      {"Ergy < 200 mJ", [&](const auto& c) { return best_energy(c) < 200.0; }},
      {"Ergy < 250 mJ", [&](const auto& c) { return best_energy(c) < 250.0; }},
      {"Err < 25% & Ergy < 250 mJ",
       [&](const auto& c) { return error(c) < 25.0 && best_energy(c) < 250.0; }},
  };

  bench::heading("Fig. 7 -- architectures satisfying criteria");
  std::printf("%-28s %12s %12s %10s\n", "criterion", "within-opt", "after-opt", "change");
  bench::rule();
  for (const Criterion& criterion : criteria) {
    const std::size_t within_count = core::count_satisfying(within_result.history, criterion.pass);
    const std::size_t after_count = core::count_satisfying(after_result.history, criterion.pass);
    if (after_count == 0) {
      std::printf("%-28s %12zu %12zu %10s\n", criterion.label, within_count, after_count,
                  within_count > 0 ? "(new)" : "--");
    } else {
      const double change = 100.0 * (static_cast<double>(within_count) -
                                     static_cast<double>(after_count)) /
                            static_cast<double>(after_count);
      std::printf("%-28s %12zu %12zu %+9.1f%%\n", criterion.label, within_count, after_count,
                  change);
    }
  }
  bench::rule();
  std::printf("paper's expectation: energy-criteria counts grow for the within arm;\n"
              "accuracy-constrained counts hold or improve.\n");
  return 0;
}
