// Ablation (extension): activation wire-format vs partitioning opportunity.
//
// The paper ships fp32 intermediate activations (Neurosurgeon convention);
// compressing them (fp16 / int8) shrinks every split point's payload and
// moves the "first viable partition point" earlier — connecting LENS to the
// compression row of its Table II. This harness sweeps the bytes-per-
// element policy on AlexNet and on random search-space candidates.

#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/search_space.hpp"
#include "dnn/presets.hpp"

int main() {
  using namespace lens;
  perf::DeviceSimulator sim(perf::jetson_tx2_gpu());
  const perf::SimulatorOracle oracle(sim);
  const comm::CommModel wifi(comm::WirelessTechnology::kWifi, 5.0);
  const dnn::Architecture alexnet = dnn::alexnet();

  bench::heading("Ablation -- activation wire format (AlexNet @ 3 Mbps GPU/WiFi)");
  std::printf("%-10s %20s %14s %14s %16s\n", "format", "first viable split",
              "#split points", "best ene (mJ)", "energy split");
  struct Format {
    const char* label;
    int bytes;
  };
  const Format formats[] = {{"fp32", 4}, {"fp16", 2}, {"int8", 1}};
  for (const Format& format : formats) {
    core::EvaluatorConfig config;
    config.sizes.activation_bytes_per_element = format.bytes;
    const core::DeploymentEvaluator evaluator(oracle, wifi, config);
    const auto candidates = alexnet.partition_candidates(config.sizes);
    const core::DeploymentEvaluation eval = evaluator.evaluate(alexnet, 3.0);
    std::printf("%-10s %20s %14zu %14.0f %16s\n", format.label,
                candidates.empty() ? "-" : alexnet.layers()[candidates.front()].name.c_str(),
                candidates.size(), eval.best_energy_mj(),
                eval.energy_choice().label(alexnet).c_str());
  }

  const int samples = bench::fast_mode() ? 100 : 300;
  bench::heading("Random search-space candidates: how often a split wins energy @3 Mbps");
  std::printf("%-10s %22s %24s\n", "format", "conv split viable", "energy picks split");
  const core::SearchSpace space;
  for (const Format& format : formats) {
    core::EvaluatorConfig config;
    config.sizes.activation_bytes_per_element = format.bytes;
    const core::DeploymentEvaluator evaluator(oracle, wifi, config);
    std::mt19937_64 rng(7);
    int conv_split = 0;
    int split_wins = 0;
    for (int i = 0; i < samples; ++i) {
      const core::Genotype g = space.random(rng);
      const dnn::Architecture arch = space.decode(g);
      for (std::size_t idx : arch.partition_candidates(config.sizes)) {
        if (arch.layers()[idx].spec.kind != dnn::LayerKind::kDense) {
          ++conv_split;
          break;
        }
      }
      if (evaluator.evaluate(arch, 3.0).energy_choice().kind ==
          core::DeploymentKind::kPartitioned) {
        ++split_wins;
      }
    }
    std::printf("%-10s %21.1f%% %23.1f%%\n", format.label, 100.0 * conv_split / samples,
                100.0 * split_wins / samples);
  }
  bench::rule();
  std::printf("takeaway: activation compression multiplies the payoff of partition-aware\n"
              "search -- a natural LENS x SIEVE composition the paper leaves open.\n");
  return 0;
}
